#include "core/designer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "moo/testproblems.hpp"

namespace rmp::core {
namespace {

DesignerConfig small_config() {
  DesignerConfig cfg;
  cfg.optimizer.islands = 2;
  cfg.optimizer.generations = 30;
  cfg.optimizer.migration_interval = 10;
  cfg.optimizer.seed = 5;
  cfg.surface.samples = 8;
  cfg.surface.yield.perturbation.global_trials = 100;
  return cfg;
}

TEST(DesignerTest, FullPipelineOnZdt1) {
  const moo::Zdt1 problem(8);
  const RobustDesigner designer(small_config());
  const robustness::PropertyFn property = [&](std::span<const double> x) {
    num::Vec f(2);
    (void)problem.evaluate(x, f);
    return f[0];
  };
  const DesignReport report = designer.design(problem, property);

  EXPECT_GT(report.front.size(), 10u);
  EXPECT_GT(report.evaluations, 1000u);

  // Mined set: closest-to-ideal + one shadow minimum per objective + max-yield.
  ASSERT_GE(report.mined.size(), 3u);
  EXPECT_EQ(report.mined[0].selection, "closest-to-ideal");
  EXPECT_EQ(report.mined[1].selection, "shadow-min f0");
  EXPECT_EQ(report.mined[2].selection, "shadow-min f1");
  EXPECT_EQ(report.mined.back().selection, "max-yield");

  // Every mined candidate carries a yield estimate in [0, 1].
  for (const MinedCandidate& c : report.mined) {
    ASSERT_TRUE(c.yield.has_value()) << c.selection;
    EXPECT_GE(c.yield->gamma, 0.0);
    EXPECT_LE(c.yield->gamma, 1.0);
  }
  EXPECT_FALSE(report.surface.empty());
}

TEST(DesignerTest, ShadowMinimaAreExtremes) {
  const moo::Zdt1 problem(8);
  const RobustDesigner designer(small_config());
  const DesignReport report = designer.design(problem, nullptr);
  const num::Vec prm = report.front.relative_minimum();
  EXPECT_DOUBLE_EQ(report.mined[1].objectives[0], prm[0]);
  EXPECT_DOUBLE_EQ(report.mined[2].objectives[1], prm[1]);
}

TEST(DesignerTest, NullPropertySkipsRobustness) {
  const moo::Zdt1 problem(8);
  const RobustDesigner designer(small_config());
  const DesignReport report = designer.design(problem, nullptr);
  EXPECT_TRUE(report.surface.empty());
  for (const MinedCandidate& c : report.mined) {
    EXPECT_FALSE(c.yield.has_value());
  }
}

TEST(DesignerTest, RobustnessDisabledByConfig) {
  const moo::Zdt1 problem(8);
  DesignerConfig cfg = small_config();
  cfg.run_robustness = false;
  const RobustDesigner designer(cfg);
  const robustness::PropertyFn property = [](std::span<const double> x) {
    return x[0];
  };
  const DesignReport report = designer.design(problem, property);
  EXPECT_TRUE(report.surface.empty());
}

TEST(ReportTest, FrontCsvSortedAndSigned) {
  pareto::Front front;
  pareto::Individual a, b;
  a.f = {-2.0, 5.0};
  b.f = {-1.0, 7.0};
  front.add(b);
  front.add(a);
  std::ostringstream os;
  const bool negate[] = {true, false};
  write_front_csv(front, os, negate);
  EXPECT_EQ(os.str(), "2,5\n1,7\n");
}

TEST(ReportTest, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(ReportTest, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.5), "1.5");
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
}

TEST(ReportTest, SummaryPrints) {
  const moo::Zdt1 problem(6);
  DesignerConfig cfg = small_config();
  cfg.optimizer.generations = 5;
  const RobustDesigner designer(cfg);
  const DesignReport report = designer.design(problem, nullptr);
  std::ostringstream os;
  print_report_summary(report, os);
  EXPECT_NE(os.str().find("front size"), std::string::npos);
  EXPECT_NE(os.str().find("closest-to-ideal"), std::string::npos);
}

}  // namespace
}  // namespace rmp::core
