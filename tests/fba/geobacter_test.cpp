#include "fba/geobacter.hpp"

#include <gtest/gtest.h>

#include "fba/fba.hpp"
#include "fba/geobacter_problem.hpp"

namespace rmp::fba {
namespace {

const MetabolicNetwork& model() {
  static const MetabolicNetwork net = build_geobacter();
  return net;
}

TEST(GeobacterTest, ExactlySixHundredEightReactions) {
  // The paper optimizes "its 608 reaction fluxes".
  EXPECT_EQ(model().num_reactions(), 608u);
}

TEST(GeobacterTest, GenomeScaleShape) {
  EXPECT_GT(model().num_internal_metabolites(), 400u);
  EXPECT_TRUE(model().orphan_metabolites().empty());
}

TEST(GeobacterTest, AtpMaintenanceFixedAtPaperValue) {
  // "its flux is kept fixed at 0.45".
  const auto idx = model().reaction_index(geobacter_ids::kAtpMaintenance);
  ASSERT_TRUE(idx.has_value());
  EXPECT_DOUBLE_EQ(model().reaction(*idx).lower_bound, 0.45);
  EXPECT_DOUBLE_EQ(model().reaction(*idx).upper_bound, 0.45);
}

TEST(GeobacterTest, MaxElectronProductionNearPaperRange) {
  // Paper Figure 4: electron production 158.14 - 160.90 mmol/gDW/h.
  const FbaResult r = run_fba(model(), geobacter_ids::kElectronProduction);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective_value, 161.0, 1.0);
  // Biomass at the max-EP corner ~ 0.283 (paper point E).
  const double bp =
      r.fluxes[model().reaction_index(geobacter_ids::kBiomassExport).value()];
  EXPECT_NEAR(bp, 0.283, 0.02);
}

TEST(GeobacterTest, MaxBiomassExceedsPaperSegment) {
  const FbaResult r = run_fba(model(), geobacter_ids::kBiomassExport);
  ASSERT_TRUE(r.optimal());
  EXPECT_GT(r.objective_value, 0.30);  // the paper segment is the EP-rich corner
  EXPECT_LT(r.objective_value, 1.0);
}

TEST(GeobacterTest, TradeoffSlopeMatchesPaper) {
  // Between EP ~158 and ~161 biomass falls by ~0.017 (paper A -> E):
  // slope dBP/dEP ~ -0.006.
  MetabolicNetwork net = build_geobacter();
  // Force EP to specific values by pinning bounds on EX_el, maximize BP.
  auto pinned_bp = [&](double ep) {
    MetabolicNetwork pin;
    for (std::size_t m = 0; m < net.num_metabolites(); ++m) {
      const Metabolite& met = net.metabolite(m);
      pin.add_metabolite(met.id, met.name, met.external);
    }
    for (std::size_t r = 0; r < net.num_reactions(); ++r) {
      Reaction rxn = net.reaction(r);
      if (rxn.id == geobacter_ids::kElectronProduction) {
        rxn.lower_bound = ep;
        rxn.upper_bound = ep;
      }
      pin.add_reaction(std::move(rxn));
    }
    const FbaResult r = run_fba(pin, geobacter_ids::kBiomassExport);
    EXPECT_TRUE(r.optimal());
    return r.objective_value;
  };
  const double bp158 = pinned_bp(158.14);
  const double bp161 = pinned_bp(160.90);
  EXPECT_GT(bp158, bp161);
  const double slope = (bp158 - bp161) / (160.90 - 158.14);
  EXPECT_NEAR(slope, 0.006, 0.003);
  EXPECT_NEAR(bp158, 0.300, 0.02);  // paper point A: (158.14, 0.300)
}

TEST(GeobacterTest, PeripheralPathwaysSilentAtOptimum) {
  const FbaResult r = run_fba(model(), geobacter_ids::kElectronProduction);
  ASSERT_TRUE(r.optimal());
  double peripheral_flux = 0.0;
  for (std::size_t i = 0; i < model().num_reactions(); ++i) {
    if (model().reaction(i).id.rfind("EX_p", 0) == 0) {
      peripheral_flux += r.fluxes[i];
    }
  }
  EXPECT_LT(peripheral_flux, 1.0);
}

TEST(GeobacterProblemTest, DimensionsAndBounds) {
  auto net = std::make_shared<const MetabolicNetwork>(build_geobacter());
  GeobacterProblemOptions opts;
  opts.nullspace_repair = false;  // keep construction cheap here
  opts.lp_seeding = false;
  const GeobacterProblem p(net, opts);
  EXPECT_EQ(p.num_variables(), 608u);
  EXPECT_EQ(p.num_objectives(), 2u);
}

TEST(GeobacterProblemTest, EvaluateScoresFluxVector) {
  auto net = std::make_shared<const MetabolicNetwork>(build_geobacter());
  GeobacterProblemOptions opts;
  opts.nullspace_repair = false;
  opts.lp_seeding = true;
  const GeobacterProblem p(net, opts);

  // An LP seed must evaluate as (essentially) feasible with paper-scale
  // objectives.
  num::Rng rng(1);
  std::vector<num::Vec> seeds(1);
  ASSERT_EQ(p.suggest_initial(seeds, rng), 1u);
  num::Vec f(2);
  const double violation = p.evaluate(seeds[0], f);
  EXPECT_LT(violation, 1e-3);
  const auto [ep, bp] = GeobacterProblem::to_paper_units(f);
  EXPECT_GT(ep, 100.0);
  EXPECT_GT(bp, 0.2);
}

TEST(GeobacterProblemTest, ViolationMeasuresSteadyStateResidual) {
  auto net = std::make_shared<const MetabolicNetwork>(build_geobacter());
  GeobacterProblemOptions opts;
  opts.nullspace_repair = false;
  opts.lp_seeding = false;
  const GeobacterProblem p(net, opts);
  num::Vec x(608, 1.0);  // uniform fluxes are far from steady state
  num::Vec f(2);
  const double violation = p.evaluate(x, f);
  EXPECT_GT(violation, 1.0);
  EXPECT_NEAR(violation, net->steady_state_violation(x), 1e-9);
}

TEST(GeobacterProblemTest, NullspaceRepairReducesViolation) {
  auto net = std::make_shared<const MetabolicNetwork>(build_geobacter());
  GeobacterProblemOptions opts;
  opts.nullspace_repair = true;
  opts.lp_seeding = true;
  const GeobacterProblem p(net, opts);

  num::Rng rng(7);
  num::Vec x(608);
  const num::Vec lo = net->lower_bounds();
  const num::Vec hi = net->upper_bounds();
  for (std::size_t i = 0; i < 608; ++i) {
    x[i] = rng.uniform(lo[i], std::min(hi[i], lo[i] + 10.0));
  }
  const double before = net->steady_state_violation(x);
  p.repair(x);
  const double after = net->steady_state_violation(x);
  EXPECT_LT(after, before * 0.2);
  // Repair must respect the box.
  for (std::size_t i = 0; i < 608; ++i) {
    EXPECT_GE(x[i], lo[i] - 1e-9);
    EXPECT_LE(x[i], hi[i] + 1e-9);
  }
}

}  // namespace
}  // namespace rmp::fba
