#include "fba/fba.hpp"

#include <gtest/gtest.h>

namespace rmp::fba {
namespace {

/// Branched toy network: uptake A (<=10), A -> B (<=8) or A -> C (<=5),
/// B and C -> biomass with different yields.
MetabolicNetwork branched() {
  MetabolicNetwork net;
  const auto ext = net.add_metabolite("a_ext", "", true);
  const auto a = net.add_metabolite("a");
  const auto b = net.add_metabolite("b");
  const auto c = net.add_metabolite("c");
  const auto bio = net.add_metabolite("bio");
  const auto bio_ext = net.add_metabolite("bio_ext", "", true);
  net.add_reaction({"uptake", "", {{ext, -1.0}, {a, 1.0}}, 0.0, 10.0});
  net.add_reaction({"to_b", "", {{a, -1.0}, {b, 1.0}}, 0.0, 8.0});
  net.add_reaction({"to_c", "", {{a, -1.0}, {c, 1.0}}, 0.0, 5.0});
  net.add_reaction({"bio_b", "", {{b, -1.0}, {bio, 2.0}}, 0.0, 100.0});
  net.add_reaction({"bio_c", "", {{c, -1.0}, {bio, 1.0}}, 0.0, 100.0});
  net.add_reaction({"EX_bio", "", {{bio, -1.0}, {bio_ext, 1.0}}, 0.0, 1000.0});
  return net;
}

TEST(FbaTest, MaximizesBiomassThroughBestBranch) {
  const MetabolicNetwork net = branched();
  const FbaResult r = run_fba(net, "EX_bio");
  ASSERT_TRUE(r.optimal());
  // Best: 8 through B (yield 2) + 2 through C (yield 1) = 18.
  EXPECT_NEAR(r.objective_value, 18.0, 1e-6);
  EXPECT_NEAR(r.fluxes[net.reaction_index("to_b").value()], 8.0, 1e-6);
  EXPECT_NEAR(r.fluxes[net.reaction_index("to_c").value()], 2.0, 1e-6);
}

TEST(FbaTest, SolutionIsAtSteadyState) {
  const MetabolicNetwork net = branched();
  const FbaResult r = run_fba(net, "EX_bio");
  ASSERT_TRUE(r.optimal());
  EXPECT_LT(net.steady_state_violation(r.fluxes), 1e-6);
}

TEST(FbaTest, WeightedObjective) {
  const MetabolicNetwork net = branched();
  num::Vec w(net.num_reactions(), 0.0);
  w[net.reaction_index("to_c").value()] = 1.0;
  const FbaResult r = run_fba(net, w);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective_value, 5.0, 1e-6);
}

TEST(FbaTest, BlockedNetworkGivesZero) {
  MetabolicNetwork net = branched();
  // New isolated metabolite that cannot be balanced forces zero flux, not
  // infeasibility (all-zero is always feasible with zero lower bounds).
  const FbaResult r = run_fba(net, "EX_bio");
  ASSERT_TRUE(r.optimal());
  EXPECT_GE(r.objective_value, 0.0);
}

TEST(FbaTest, FixedMaintenanceFluxRespected) {
  MetabolicNetwork net = branched();
  // Pin to_c at exactly 3 (like the paper's ATP maintenance at 0.45).
  const std::size_t idx = net.reaction_index("to_c").value();
  Reaction pinned = net.reaction(idx);
  MetabolicNetwork net2;
  // Rebuild with modified bounds (network API has no mutate; rebuild).
  for (std::size_t m = 0; m < net.num_metabolites(); ++m) {
    const Metabolite& met = net.metabolite(m);
    net2.add_metabolite(met.id, met.name, met.external);
  }
  for (std::size_t r = 0; r < net.num_reactions(); ++r) {
    Reaction rxn = net.reaction(r);
    if (r == idx) {
      rxn.lower_bound = 3.0;
      rxn.upper_bound = 3.0;
    }
    net2.add_reaction(std::move(rxn));
  }
  const FbaResult r = run_fba(net2, "EX_bio");
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.fluxes[idx], 3.0, 1e-8);
  EXPECT_NEAR(r.objective_value, 17.0, 1e-6);  // 7*2 + 3*1
}

TEST(FvaTest, RangesAtOptimum) {
  const MetabolicNetwork net = branched();
  const auto fva = run_fva(net, "EX_bio", 1.0, {"to_b", "to_c", "uptake"});
  ASSERT_EQ(fva.size(), 3u);
  // At the unique optimum every flux is pinned.
  EXPECT_NEAR(fva[0].min_flux, 8.0, 1e-6);
  EXPECT_NEAR(fva[0].max_flux, 8.0, 1e-6);
  EXPECT_NEAR(fva[1].min_flux, 2.0, 1e-6);
  EXPECT_NEAR(fva[1].max_flux, 2.0, 1e-6);
  EXPECT_NEAR(fva[2].min_flux, 10.0, 1e-6);
}

TEST(FvaTest, RelaxedOptimumWidensRanges) {
  const MetabolicNetwork net = branched();
  const auto fva = run_fva(net, "EX_bio", 0.5, {"to_c"});
  ASSERT_EQ(fva.size(), 1u);
  EXPECT_LT(fva[0].min_flux, 2.0 + 1e-9);
  EXPECT_NEAR(fva[0].max_flux, 5.0, 1e-6);  // branch cap
}

}  // namespace
}  // namespace rmp::fba
