#include "fba/network.hpp"

#include <gtest/gtest.h>

namespace rmp::fba {
namespace {

MetabolicNetwork toy() {
  // A -> B -> (export); one internal metabolite chain.
  MetabolicNetwork net;
  const auto ext = net.add_metabolite("a_ext", "A external", true);
  const auto a = net.add_metabolite("a", "A");
  const auto b = net.add_metabolite("b", "B");
  net.add_reaction({"uptake", "uptake", {{ext, -1.0}, {a, 1.0}}, 0.0, 10.0});
  net.add_reaction({"convert", "convert", {{a, -1.0}, {b, 1.0}}, 0.0, 8.0});
  net.add_reaction({"export", "export", {{b, -1.0}}, 0.0, 100.0});
  return net;
}

TEST(NetworkTest, CountsAndLookups) {
  const MetabolicNetwork net = toy();
  EXPECT_EQ(net.num_metabolites(), 3u);
  EXPECT_EQ(net.num_internal_metabolites(), 2u);
  EXPECT_EQ(net.num_reactions(), 3u);
  EXPECT_EQ(net.metabolite_index("b"), 2u);
  EXPECT_EQ(net.reaction_index("convert"), 1u);
  EXPECT_FALSE(net.metabolite_index("nope").has_value());
  EXPECT_FALSE(net.reaction_index("nope").has_value());
}

TEST(NetworkTest, DuplicateMetaboliteReturnsExistingIndex) {
  MetabolicNetwork net;
  const auto a = net.add_metabolite("x");
  const auto b = net.add_metabolite("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.num_metabolites(), 1u);
}

TEST(NetworkTest, StoichiometricMatrixSkipsExternal) {
  const MetabolicNetwork net = toy();
  const num::SparseMatrix s = net.stoichiometric_matrix();
  EXPECT_EQ(s.rows(), 2u);  // internal metabolites only
  EXPECT_EQ(s.cols(), 3u);
  // Row for "a": +1 from uptake, -1 from convert.
  EXPECT_DOUBLE_EQ(s.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), -1.0);
}

TEST(NetworkTest, SteadyStateViolation) {
  const MetabolicNetwork net = toy();
  // Balanced flux: uptake = convert = export = 2.
  EXPECT_DOUBLE_EQ(net.steady_state_violation(num::Vec{2.0, 2.0, 2.0}), 0.0);
  // Unbalanced: A accumulates at 1/unit, B drains at 1/unit.
  EXPECT_DOUBLE_EQ(net.steady_state_violation(num::Vec{3.0, 2.0, 3.0}), 2.0);
}

TEST(NetworkTest, BoundsVectors) {
  const MetabolicNetwork net = toy();
  EXPECT_EQ(net.lower_bounds(), (num::Vec{0.0, 0.0, 0.0}));
  EXPECT_EQ(net.upper_bounds(), (num::Vec{10.0, 8.0, 100.0}));
}

TEST(NetworkTest, OrphanDetection) {
  MetabolicNetwork net = toy();
  const auto orphan = net.add_metabolite("orphan");
  net.add_reaction({"dead_end", "dead end", {{orphan, 1.0}}, 0.0, 1.0});
  const auto orphans = net.orphan_metabolites();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], "orphan");
}

TEST(NetworkTest, ReversibleReactionNotOrphan) {
  MetabolicNetwork net;
  const auto a = net.add_metabolite("a");
  const auto b = net.add_metabolite("b");
  net.add_reaction({"iso", "isomerase", {{a, -1.0}, {b, 1.0}}, -10.0, 10.0});
  net.add_reaction({"in", "in", {{a, 1.0}}, 0.0, 1.0});
  net.add_reaction({"out", "out", {{b, -1.0}}, 0.0, 1.0});
  EXPECT_TRUE(net.orphan_metabolites().empty());
}

TEST(NetworkTest, ReversibilityFlag) {
  const MetabolicNetwork net = toy();
  EXPECT_FALSE(net.reaction(0).reversible());
  Reaction r;
  r.lower_bound = -5.0;
  EXPECT_TRUE(r.reversible());
}

}  // namespace
}  // namespace rmp::fba
