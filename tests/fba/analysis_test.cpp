#include "fba/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::fba {
namespace {

/// Toy network with a futile cycle: uptake -> a -> bio, plus a <-> b <-> a
/// loop that carries arbitrary flux without affecting the objective.
MetabolicNetwork with_cycle() {
  MetabolicNetwork net;
  const auto ext = net.add_metabolite("x_ext", "", true);
  const auto a = net.add_metabolite("a");
  const auto b = net.add_metabolite("b");
  const auto bio = net.add_metabolite("bio");
  const auto bio_ext = net.add_metabolite("bio_ext", "", true);
  net.add_reaction({"uptake", "", {{ext, -1.0}, {a, 1.0}}, 0.0, 5.0});
  net.add_reaction({"a_to_b", "", {{a, -1.0}, {b, 1.0}}, 0.0, 100.0});
  net.add_reaction({"b_to_a", "", {{b, -1.0}, {a, 1.0}}, 0.0, 100.0});
  net.add_reaction({"growth", "", {{a, -1.0}, {bio, 1.0}}, 0.0, 100.0});
  net.add_reaction({"EX_bio", "", {{bio, -1.0}, {bio_ext, 1.0}}, 0.0, 100.0});
  return net;
}

TEST(PfbaTest, KeepsOptimumAndKillsFutileCycle) {
  const MetabolicNetwork net = with_cycle();
  const FbaResult plain = run_fba(net, "EX_bio");
  ASSERT_TRUE(plain.optimal());
  EXPECT_NEAR(plain.objective_value, 5.0, 1e-6);

  const FbaResult pfba = run_pfba(net, "EX_bio");
  ASSERT_TRUE(pfba.optimal());
  EXPECT_NEAR(pfba.objective_value, 5.0, 1e-6);
  // The cycle carries zero flux in the parsimonious solution.
  EXPECT_NEAR(pfba.fluxes[net.reaction_index("a_to_b").value()], 0.0, 1e-6);
  EXPECT_NEAR(pfba.fluxes[net.reaction_index("b_to_a").value()], 0.0, 1e-6);
}

TEST(PfbaTest, SolutionStillSteadyState) {
  const MetabolicNetwork net = with_cycle();
  const FbaResult pfba = run_pfba(net, "EX_bio");
  ASSERT_TRUE(pfba.optimal());
  EXPECT_LT(net.steady_state_violation(pfba.fluxes), 1e-6);
}

TEST(PfbaTest, TotalFluxNotLargerThanPlainFba) {
  const MetabolicNetwork net = with_cycle();
  const FbaResult plain = run_fba(net, "EX_bio");
  const FbaResult pfba = run_pfba(net, "EX_bio");
  ASSERT_TRUE(plain.optimal() && pfba.optimal());
  EXPECT_LE(num::norm1(pfba.fluxes), num::norm1(plain.fluxes) + 1e-6);
}

TEST(KnockoutTest, EssentialAndRedundantReactions) {
  const MetabolicNetwork net = with_cycle();
  const auto scan = knockout_scan(net, "EX_bio", {"uptake", "a_to_b", "growth"});
  ASSERT_EQ(scan.size(), 3u);
  // uptake and growth are essential; the cycle edge is not.
  EXPECT_TRUE(scan[0].essential);
  EXPECT_NEAR(scan[0].objective_value, 0.0, 1e-8);
  EXPECT_FALSE(scan[1].essential);
  EXPECT_NEAR(scan[1].retained_fraction, 1.0, 1e-6);
  EXPECT_TRUE(scan[2].essential);
}

TEST(KnockoutTest, SkipsPinnedFluxes) {
  MetabolicNetwork net;
  const auto a = net.add_metabolite("a");
  net.add_reaction({"in", "", {{a, 1.0}}, 0.45, 0.45});  // pinned, like ATPM
  net.add_reaction({"out", "", {{a, -1.0}}, 0.0, 10.0});
  const auto scan = knockout_scan(net, "out", {"in"});
  EXPECT_TRUE(scan.empty());
}

TEST(KnockoutTest, ObjectiveItselfNotScanned) {
  const MetabolicNetwork net = with_cycle();
  const auto scan = knockout_scan(net, "EX_bio", {"EX_bio"});
  EXPECT_TRUE(scan.empty());
}

}  // namespace
}  // namespace rmp::fba
