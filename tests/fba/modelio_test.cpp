#include "fba/modelio.hpp"

#include <gtest/gtest.h>

#include "fba/geobacter.hpp"

namespace rmp::fba {
namespace {

TEST(ModelIoTest, RoundTripSmallNetwork) {
  MetabolicNetwork net;
  const auto ext = net.add_metabolite("s_ext", "", true);
  const auto s = net.add_metabolite("s");
  net.add_reaction({"in", "", {{ext, -1.0}, {s, 1.0}}, 0.0, 5.5});
  net.add_reaction({"out", "", {{s, -1.0}}, -2.0, 7.0});

  const std::string text = network_to_string(net);
  std::string error;
  const auto parsed = network_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_metabolites(), 2u);
  EXPECT_EQ(parsed->num_reactions(), 2u);
  EXPECT_TRUE(parsed->metabolite(0).external);
  EXPECT_FALSE(parsed->metabolite(1).external);
  EXPECT_DOUBLE_EQ(parsed->reaction(1).lower_bound, -2.0);
  EXPECT_DOUBLE_EQ(parsed->reaction(1).upper_bound, 7.0);
  EXPECT_EQ(parsed->reaction(0).stoichiometry.size(), 2u);
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "metabolite a\n"
      "reaction r 0 1 : 1 a\n";
  const auto net = network_from_string(text);
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->num_reactions(), 1u);
}

TEST(ModelIoTest, UnknownMetaboliteRejected) {
  const std::string text = "reaction r 0 1 : 1 ghost\n";
  std::string error;
  EXPECT_FALSE(network_from_string(text, &error).has_value());
  EXPECT_NE(error.find("ghost"), std::string::npos);
}

TEST(ModelIoTest, MalformedHeaderRejected) {
  std::string error;
  EXPECT_FALSE(network_from_string("reaction r 0 1 1 a\n", &error).has_value());
  EXPECT_FALSE(network_from_string("frobnicate x\n", &error).has_value());
}

TEST(ModelIoTest, DuplicateReactionRejected) {
  const std::string text =
      "metabolite a\n"
      "reaction r 0 1 : 1 a\n"
      "reaction r 0 1 : -1 a\n";
  std::string error;
  EXPECT_FALSE(network_from_string(text, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ModelIoTest, EmptyReactionRejected) {
  std::string error;
  EXPECT_FALSE(network_from_string("reaction r 0 1 :\n", &error).has_value());
}

TEST(ModelIoTest, GenomeScaleRoundTrip) {
  // The full synthetic Geobacter model must survive serialization intact.
  const MetabolicNetwork original = build_geobacter();
  const std::string text = network_to_string(original);
  std::string error;
  const auto parsed = network_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_reactions(), original.num_reactions());
  EXPECT_EQ(parsed->num_metabolites(), original.num_metabolites());
  // Spot-check stoichiometric equivalence via the violation of a random-ish
  // flux vector.
  num::Vec v(original.num_reactions());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>((i * 2654435761u) % 100) / 25.0;
  }
  EXPECT_NEAR(parsed->steady_state_violation(v), original.steady_state_violation(v),
              1e-9);
}

TEST(ModelIoTest, FileSaveLoad) {
  MetabolicNetwork net;
  net.add_metabolite("m");
  net.add_reaction({"r", "", {{0, 1.0}}, 0.0, 1.0});
  const std::string path = ::testing::TempDir() + "/rmp_modelio_test.net";
  ASSERT_TRUE(save_network(net, path));
  std::string error;
  const auto loaded = load_network(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_reactions(), 1u);
}

TEST(ModelIoTest, MissingFileError) {
  std::string error;
  EXPECT_FALSE(load_network("/nonexistent/rmp.net", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rmp::fba
