// Crash/resume differential suite for api::Session — the checkpoint
// acceptance bar of the determinism contract: a run serialized at ANY epoch
// boundary and restored into a fresh Session must finish with bit-identical
// archive fingerprint, mined candidates and EvalStats totals vs the
// uninterrupted run, for any island thread count, with the evaluation cache
// and kinetic warm pool enabled.  Every resume here crosses the JSON text
// boundary (dump + parse), exactly what a file crossing exercises.
//
// The second half pins the rejection surface: corrupted or mismatched
// envelopes raise named SpecErrors, never a silent divergent resume.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "api/run.hpp"
#include "api/spec.hpp"
#include "core/json.hpp"
#include "moo/evalcache.hpp"

namespace rmp::api {
namespace {

RunSpec zdt_spec() {
  RunSpec spec;
  spec.problem = "zdt1?n=6";
  spec.optimizer = "nsga2?population=16";
  spec.generations = 10;
  spec.seed = 11;
  spec.threads = 1;
  return spec;
}

RunSpec kinetic_spec(std::size_t threads) {
  RunSpec spec;
  spec.problem = "photosynthesis?scenario=present-low&pool=4096";
  spec.optimizer =
      "pmo2?islands=2&population=8&migration_interval=2&migrants=2";
  spec.generations = 6;
  spec.seed = 7;
  spec.threads = threads;
  spec.cache = 4096;
  spec.robustness.enabled = true;
  spec.robustness.trials = 4;
  return spec;
}

/// Runs to epoch `at`, checkpoints, abandons the session, and finishes a
/// fresh one restored through serialized text.
RunResult run_with_interrupt(const RunSpec& spec, std::size_t at) {
  core::Json envelope;
  {
    Session session(spec);
    while (session.epoch() < at) session.step_epoch();
    envelope = core::Json::parse(session.checkpoint().dump(2));
  }  // the interrupted session dies here, state travels only as text
  Session resumed = Session::resume(envelope);
  EXPECT_EQ(resumed.epoch(), at);
  return resumed.finish();
}

void expect_identical(const RunResult& a, const RunResult& b, const char* what) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.eval_stats.evaluations, b.eval_stats.evaluations) << what;
  EXPECT_EQ(a.eval_stats.cache_hits, b.eval_stats.cache_hits) << what;
  EXPECT_EQ(a.eval_stats.prescreen_skips, b.eval_stats.prescreen_skips) << what;
  EXPECT_EQ(a.eval_stats.pool_hits, b.eval_stats.pool_hits) << what;
  EXPECT_EQ(a.eval_stats.full_evaluations, b.eval_stats.full_evaluations) << what;
  ASSERT_EQ(a.mined.size(), b.mined.size()) << what;
  for (std::size_t i = 0; i < a.mined.size(); ++i) {
    EXPECT_EQ(a.mined[i].selection, b.mined[i].selection) << what;
    EXPECT_EQ(a.mined[i].front_index, b.mined[i].front_index) << what;
    EXPECT_TRUE(moo::bitwise_equal(a.mined[i].x, b.mined[i].x)) << what;
    EXPECT_TRUE(moo::bitwise_equal(a.mined[i].objectives, b.mined[i].objectives))
        << what;
    ASSERT_EQ(a.mined[i].yield.has_value(), b.mined[i].yield.has_value()) << what;
    if (a.mined[i].yield) {
      EXPECT_EQ(a.mined[i].yield->gamma, b.mined[i].yield->gamma) << what;
    }
  }
}

/// Checkpoint epochs the ISSUE names: first, mid, last-but-one.
std::vector<std::size_t> interrupt_points(const RunSpec& spec) {
  return {1, spec.generations / 2, spec.generations - 1};
}

TEST(SessionResumeTest, Nsga2KillAndResumeMatchesUninterrupted) {
  const RunSpec spec = zdt_spec();
  const RunResult baseline = run(spec);
  for (const std::size_t at : interrupt_points(spec)) {
    const RunResult resumed = run_with_interrupt(spec, at);
    expect_identical(baseline, resumed,
                     ("nsga2 resumed at " + std::to_string(at)).c_str());
  }
}

TEST(SessionResumeTest, Spea2AndMoeadKillAndResumeMatch) {
  for (const char* optimizer : {"spea2?population=16&archive=12",
                                "moead?population=16&neighborhood=5"}) {
    RunSpec spec = zdt_spec();
    spec.optimizer = optimizer;
    const RunResult baseline = run(spec);
    const RunResult resumed = run_with_interrupt(spec, spec.generations / 2);
    expect_identical(baseline, resumed, optimizer);
  }
}

TEST(SessionResumeTest, KineticPmo2KillAndResumeAcrossThreadCounts) {
  // The acceptance criterion verbatim: pmo2 x photosynthesis with cache and
  // warm pool on, island_threads {1, 2, 8}, interrupted at every named
  // epoch — bit-identical fingerprint, mined candidates, EvalStats.
  const RunResult baseline = run(kinetic_spec(1));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const RunSpec spec = kinetic_spec(threads);
    for (const std::size_t at : interrupt_points(spec)) {
      const RunResult resumed = run_with_interrupt(spec, at);
      expect_identical(baseline, resumed,
                       ("kinetic t=" + std::to_string(threads) + " at=" +
                        std::to_string(at))
                           .c_str());
    }
  }
}

TEST(SessionResumeTest, ResumeOfFinalEpochCheckpointRunsPostStages) {
  const RunSpec spec = zdt_spec();
  const RunResult baseline = run(spec);
  const RunResult resumed = run_with_interrupt(spec, spec.generations);
  expect_identical(baseline, resumed, "resumed when already done");
}

TEST(SessionObserverTest, ProgressEventsCarryCumulativeEvalStats) {
  RunSpec spec = kinetic_spec(2);
  std::vector<SessionProgress> events;
  const RunResult result =
      run(spec, [&](const SessionProgress& p) { events.push_back(p); });
  ASSERT_EQ(events.size(), spec.generations);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].epoch, i + 1);
    EXPECT_EQ(events[i].total_epochs, spec.generations);
    if (i > 0) {
      // Cumulative counters never move backwards between barriers.
      EXPECT_GE(events[i].evaluations, events[i - 1].evaluations);
      EXPECT_GE(events[i].eval_stats.evaluations,
                events[i - 1].eval_stats.evaluations);
      EXPECT_GE(events[i].eval_stats.full_evaluations,
                events[i - 1].eval_stats.full_evaluations);
    }
  }
  // The final event's stats cover the whole optimize stage; the result's
  // totals only add the post-stage (robustness) work on top.
  EXPECT_EQ(events.back().evaluations, result.evaluations);
  EXPECT_GE(result.eval_stats.evaluations,
            events.back().eval_stats.evaluations);
}

TEST(SessionObserverTest, FinalProgressFingerprintIsTheRunFingerprint) {
  const RunSpec spec = zdt_spec();
  std::vector<SessionProgress> events;
  const RunResult result =
      run(spec, [&](const SessionProgress& p) { events.push_back(p); });
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().fingerprint, result.fingerprint);
}

TEST(SessionCheckpointKnobTest, PeriodicCheckpointFileResumes) {
  const std::string path = testing::TempDir() + "rmp_session_knob.ckpt.json";
  RunSpec spec = zdt_spec();
  spec.checkpoint_every = 3;
  spec.checkpoint_path = path;
  const RunResult baseline = run(spec);
  // The last write happens at the final epoch; resuming it replays only the
  // post-stages and must land on the same result.
  Session resumed = Session::resume(core::load_json_file(path));
  EXPECT_TRUE(resumed.done());
  const RunResult replay = resumed.finish();
  expect_identical(baseline, replay, "resume of the cadence checkpoint");
}

TEST(SessionCheckpointKnobTest, CadenceWithoutPathIsRejected) {
  RunSpec spec = zdt_spec();
  spec.checkpoint_every = 2;
  EXPECT_THROW((void)run(spec), SpecError);
}

// ---- rejection surface ----------------------------------------------------

core::Json checkpoint_of(const RunSpec& spec, std::size_t at) {
  Session session(spec);
  while (session.epoch() < at) session.step_epoch();
  return session.checkpoint();
}

/// Copy of an object document minus one key (Json has no erase).
core::Json without(const core::Json& doc, std::string_view key) {
  core::Json out = core::Json::object();
  for (const auto& [k, v] : doc.entries()) {
    if (k != key) out.set(k, v);
  }
  return out;
}

void expect_rejected(const core::Json& envelope, const std::string& needle) {
  try {
    (void)Session::resume(envelope);
    FAIL() << "expected SpecError mentioning \"" << needle << "\"";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(SessionRejectionTest, NonCheckpointDocuments) {
  expect_rejected(core::Json::parse("[1, 2, 3]"), "not a JSON object");
  expect_rejected(core::Json::object().set("kind", "something-else"),
                  "not an rmp checkpoint");
  expect_rejected(core::Json::object(), "missing \"kind\"");
}

TEST(SessionRejectionTest, WrongStateVersion) {
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  ckpt.set("state_version", Session::kStateVersion + 1);
  expect_rejected(ckpt, "state_version");
}

TEST(SessionRejectionTest, SpecHashMismatchNamesTheCause) {
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  // A checkpoint whose spec echo was edited (different seed => different
  // trajectory) no longer matches the recorded hash.
  RunSpec other = zdt_spec();
  other.seed = 12;
  ckpt.set("spec", spec_to_json(other));
  expect_rejected(ckpt, "spec_hash");
}

TEST(SessionRejectionTest, MissingSections) {
  const core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  expect_rejected(without(ckpt, "optimizer"), "missing \"optimizer\"");
  expect_rejected(without(ckpt, "archive"), "missing \"archive\"");
  expect_rejected(without(ckpt, "fingerprint"), "missing \"fingerprint\"");
}

TEST(SessionRejectionTest, CorruptedArchiveFingerprint) {
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  core::Json archive = ckpt.at("archive");  // copy, then corrupt
  archive.set("fingerprint", core::Json::hex(0xdeadbeefULL));
  ckpt.set("archive", std::move(archive));
  expect_rejected(ckpt, "fingerprint mismatch");
}

TEST(SessionRejectionTest, EnginePopulationSizeMismatch) {
  // A checkpoint written by a different population size must not load into
  // this engine even when the spec echo is consistent with itself.
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  RunSpec bigger = zdt_spec();
  bigger.optimizer = "nsga2?population=32";
  core::Json target = checkpoint_of(bigger, 1);
  target.set("optimizer", ckpt.at("optimizer"));
  expect_rejected(target, "population");
}

TEST(SessionRejectionTest, EpochBeyondGenerations) {
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  ckpt.set("epoch", std::uint64_t{99});
  expect_rejected(ckpt, "generations");
}

TEST(SessionRejectionTest, WrongEngineStateIsNamed) {
  // nsga2 state fed to a spea2 session: the engine tag check fires.
  core::Json ckpt = checkpoint_of(zdt_spec(), 2);
  RunSpec spea = zdt_spec();
  spea.optimizer = "spea2?population=16";
  core::Json target = checkpoint_of(spea, 2);
  target.set("optimizer", ckpt.at("optimizer"));
  expect_rejected(target, "engine");
}

TEST(SpecStateHashTest, CheckpointKnobsAreNormalizedOut) {
  RunSpec a = zdt_spec();
  RunSpec b = zdt_spec();
  b.checkpoint_every = 5;
  b.checkpoint_path = "/tmp/elsewhere.json";
  EXPECT_EQ(spec_state_hash(a), spec_state_hash(b));
  b.seed = 12;
  EXPECT_NE(spec_state_hash(a), spec_state_hash(b));
}

}  // namespace
}  // namespace rmp::api
