// Problem/optimizer registries: every registered name constructs and
// evaluates, references parse strictly, and parameters reach the instances.
#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/pmo2.hpp"
#include "moo/testproblems.hpp"
#include "numeric/vec.hpp"

namespace rmp::api {
namespace {

TEST(ParseRefTest, SplitsNameAndParams) {
  const ParsedRef plain = parse_ref("zdt1");
  EXPECT_EQ(plain.name, "zdt1");
  EXPECT_TRUE(plain.params.empty());

  const ParsedRef full = parse_ref("pmo2?islands=4&topology=ring");
  EXPECT_EQ(full.name, "pmo2");
  ASSERT_EQ(full.params.size(), 2u);
  EXPECT_EQ(full.params.at("islands"), "4");
  EXPECT_EQ(full.params.at("topology"), "ring");

  EXPECT_TRUE(parse_ref("zdt1?").params.empty());  // empty tail allowed
}

TEST(ParseRefTest, RejectsMalformedReferences) {
  EXPECT_THROW((void)parse_ref(""), SpecError);
  EXPECT_THROW((void)parse_ref("?n=3"), SpecError);          // empty name
  EXPECT_THROW((void)parse_ref("zdt1?n"), SpecError);        // missing '='
  EXPECT_THROW((void)parse_ref("zdt1?n="), SpecError);       // empty value
  EXPECT_THROW((void)parse_ref("zdt1?=3"), SpecError);       // empty key
  EXPECT_THROW((void)parse_ref("zdt1?n=3&n=4"), SpecError);  // duplicate key
}

TEST(ParamTest, TypedAccessorsValidate) {
  const ParamMap p{{"n", "12"}, {"p", "0.5"}, {"flag", "1"}, {"s", "ring"}};
  EXPECT_EQ(param_size(p, "n", 0), 12u);
  EXPECT_EQ(param_size(p, "absent", 7), 7u);
  EXPECT_DOUBLE_EQ(param_double(p, "p", 0.0), 0.5);
  EXPECT_TRUE(param_bool(p, "flag", false));
  EXPECT_EQ(param_string(p, "s", ""), "ring");
  EXPECT_THROW((void)param_size(p, "p", 0), SpecError);    // "0.5" not integral
  EXPECT_THROW((void)param_double(p, "s", 0.0), SpecError);
  EXPECT_THROW((void)param_bool(p, "s", false), SpecError);
  // Non-finite and hex-float spellings are rejected (every knob is finite).
  const ParamMap weird{{"a", "nan"}, {"b", "inf"}, {"c", "0x1"}};
  EXPECT_THROW((void)param_double(weird, "a", 0.0), SpecError);
  EXPECT_THROW((void)param_double(weird, "b", 0.0), SpecError);
  EXPECT_THROW((void)param_double(weird, "c", 0.0), SpecError);
}

// The acceptance criterion: every registered problem (>= 8, spanning the
// analytic suite, the photosynthesis scenarios and Geobacter) constructs
// from its bare name and evaluates a mid-box point.
TEST(ProblemRegistryTest, EveryRegisteredNameConstructsAndEvaluates) {
  const auto listing = ProblemRegistry::global().list();
  EXPECT_GE(listing.size(), 8u);
  for (const auto& [name, summary] : listing) {
    SCOPED_TRACE(name);
    EXPECT_FALSE(summary.empty());
    const std::shared_ptr<moo::Problem> problem =
        ProblemRegistry::global().make(name);
    ASSERT_NE(problem, nullptr);
    ASSERT_GE(problem->num_variables(), 1u);
    ASSERT_GE(problem->num_objectives(), 2u);

    const auto lo = problem->lower_bounds();
    const auto hi = problem->upper_bounds();
    num::Vec x(problem->num_variables());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.5 * (lo[i] + hi[i]);
    num::Vec f(problem->num_objectives());
    const double violation = problem->evaluate(x, f);
    EXPECT_GE(violation, 0.0);
    for (const double v : f) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ProblemRegistryTest, CoversAllThreeFamilies) {
  const auto& reg = ProblemRegistry::global();
  EXPECT_TRUE(reg.contains("zdt1"));           // analytic
  EXPECT_TRUE(reg.contains("photosynthesis"));  // kinetic scenarios
  EXPECT_TRUE(reg.contains("geobacter"));       // FBA
}

TEST(ProblemRegistryTest, ParametersReachTheInstance) {
  const auto zdt1 = ProblemRegistry::global().make("zdt1?n=5");
  EXPECT_EQ(zdt1->num_variables(), 5u);
  const auto dtlz2 = ProblemRegistry::global().make("dtlz2?n=7&m=4");
  EXPECT_EQ(dtlz2->num_variables(), 7u);
  EXPECT_EQ(dtlz2->num_objectives(), 4u);
  const auto photo = ProblemRegistry::global().make("photosynthesis?scenario=past-low");
  EXPECT_NE(photo->name().find("165"), std::string::npos);  // Ci=165 scenario
}

TEST(ProblemRegistryTest, RejectsUnknownNamesScenariosAndParams) {
  const auto& reg = ProblemRegistry::global();
  EXPECT_THROW((void)reg.make("zdt9"), SpecError);
  EXPECT_THROW((void)reg.make("zdt1?vars=3"), SpecError);      // unknown key
  EXPECT_THROW((void)reg.make("zdt1?n=1"), SpecError);         // below minimum
  EXPECT_THROW((void)reg.make("schaffer?n=3"), SpecError);     // takes none
  EXPECT_THROW((void)reg.make("photosynthesis?scenario=mars"), SpecError);
  EXPECT_THROW((void)reg.make("dtlz2?m=1"), SpecError);
}

TEST(OptimizerRegistryTest, EveryRegisteredNameConstructsAndSteps) {
  const auto listing = OptimizerRegistry::global().list();
  ASSERT_GE(listing.size(), 4u);
  const moo::Zdt1 problem(6);
  for (const auto& [name, summary] : listing) {
    SCOPED_TRACE(name);
    auto optimizer = OptimizerRegistry::global().make(
        name + "?population=12", problem, OptimizerContext{5, 1});
    ASSERT_NE(optimizer, nullptr);
    optimizer->run(2);
    EXPECT_GT(optimizer->evaluations(), 0u);
    EXPECT_FALSE(optimizer->population().empty());
    EXPECT_FALSE(optimizer->name().empty());
  }
}

TEST(OptimizerRegistryTest, ExpectedEnginesAreRegistered) {
  const auto& reg = OptimizerRegistry::global();
  for (const char* name : {"nsga2", "spea2", "moead", "pmo2"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(OptimizerRegistryTest, HeterogeneousIslandsViaEnginesParam) {
  const moo::Zdt1 problem(6);
  auto optimizer = OptimizerRegistry::global().make(
      "pmo2?islands=2&population=10&engines=nsga2,spea2", problem,
      OptimizerContext{5, 1});
  auto* pmo2 = dynamic_cast<moo::Pmo2*>(optimizer.get());
  ASSERT_NE(pmo2, nullptr);
  EXPECT_EQ(pmo2->island(0).name(), "NSGA-II");
  EXPECT_EQ(pmo2->island(1).name(), "SPEA2");
  optimizer->run(2);
  EXPECT_GT(optimizer->evaluations(), 0u);
}

TEST(OptimizerRegistryTest, RejectsUnknownNamesAndParams) {
  const moo::Zdt1 problem(6);
  const OptimizerContext ctx{5, 1};
  const auto& reg = OptimizerRegistry::global();
  EXPECT_THROW((void)reg.make("sgd", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("nsga2?pop=10", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("pmo2?topology=mesh", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("pmo2?engines=sgd", problem, ctx), SpecError);
  // A trailing comma is a malformed engine list, not a shorter one.
  EXPECT_THROW((void)reg.make("pmo2?engines=nsga2,spea2,", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("moead?scalarization=max", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("pmo2?migration_probability=nan", problem, ctx),
               SpecError);
}

TEST(OptimizerRegistryTest, RejectsOddNsga2Population) {
  // NSGA-II's mating loop pairs parents; an odd population used to be bumped
  // to even silently.  The spec layer now rejects it with the field named,
  // both for a direct nsga2 run and for pmo2's default NSGA-II islands.
  const moo::Zdt1 problem(6);
  const OptimizerContext ctx{5, 1};
  const auto& reg = OptimizerRegistry::global();
  EXPECT_THROW((void)reg.make("nsga2?population=31", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("nsga2?population=2", problem, ctx), SpecError);
  EXPECT_THROW((void)reg.make("pmo2?population=31", problem, ctx), SpecError);
  // An explicit engines list validates at island construction, but still
  // through the registry's nsga2 factory — the caller sees SpecError, not a
  // bare std::invalid_argument escaping from deep inside Pmo2.
  EXPECT_THROW((void)reg.make("pmo2?engines=nsga2&population=31", problem, ctx),
               SpecError);
  // Even populations still construct.
  EXPECT_NE(reg.make("nsga2?population=32", problem, ctx), nullptr);
  EXPECT_NE(reg.make("pmo2?population=32&islands=2", problem, ctx), nullptr);
}

TEST(OptimizerRegistryTest, ValidateChecksKeysWithoutConstructing) {
  ProblemRegistry::global().validate("geobacter?repair=0");   // no network built
  OptimizerRegistry::global().validate("pmo2?islands=4&engines=nsga2");
  EXPECT_THROW(ProblemRegistry::global().validate("geobacter?repairs=0"), SpecError);
  EXPECT_THROW(OptimizerRegistry::global().validate("pmo2?islnds=4"), SpecError);
  EXPECT_THROW(OptimizerRegistry::global().validate("sgd"), SpecError);
}

}  // namespace
}  // namespace rmp::api
