// Chaos matrix over the crash-safe spool: every kill point the fault
// injector can arm, driven end-to-end through real process deaths
// (gtest threadsafe death tests re-exec the binary; the armed site calls
// std::_Exit(core::kFaultCrashExitCode) mid-I/O) followed by a recovery
// worker adopting the torn spool.  The invariants asserted for every
// scenario:
//
//   * every submitted job terminates in exactly one of results//failed/,
//   * no job is completed twice,
//   * the recovered run reproduces the uninterrupted run's archive
//     fingerprint bit-exactly,
//   * every events/<id>.jsonl conforms to the protocol grammar.
//
// The death-test scenarios need the fault hooks, which are compiled with
// RMP_SENTINELS (Debug + sanitizer builds — ci/build.sh runs this suite in
// the ASan lane); in plain Release they skip, and the fault-free scenarios
// (worker races, truncated-checkpoint regression) still run.
//
// Death-test mechanics: the child re-executes this test from the start, so
// all setup before EXPECT_EXIT runs in both processes — make_spool wipes
// the directory, making the setup idempotent, and the parent continues on
// the spool state the crashed child left behind.  Faults are armed INSIDE
// the EXPECT_EXIT statement (parent stays clean), and the statement ends
// in std::_Exit(0) so a site that fails to fire fails the assertion.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/run.hpp"
#include "api/serve.hpp"
#include "api/session.hpp"
#include "api/spec.hpp"
#include "api/trace.hpp"
#include "core/fault.hpp"
#include "core/json.hpp"

namespace rmp::api {
namespace {

namespace fs = std::filesystem;

#define SKIP_WITHOUT_FAULT_HOOKS()                                      \
  if (!core::kFaultInjectionCompiled) {                                 \
    GTEST_SKIP() << "fault hooks are no-ops in this build (Release)";   \
  }

RunSpec chaos_spec(std::uint64_t seed, std::size_t checkpoint_every = 1) {
  RunSpec spec;
  spec.problem = "zdt1?n=6";
  spec.optimizer = "nsga2?population=16";
  spec.generations = 8;
  spec.seed = seed;
  spec.threads = 1;
  spec.checkpoint_every = checkpoint_every;
  return spec;
}

/// The uninterrupted run's fingerprint (checkpoint knobs normalized out —
/// they steer where state is written, never what the run computes).
std::uint64_t direct_fingerprint(const RunSpec& spec) {
  RunSpec direct = spec;
  direct.checkpoint_every = 0;
  direct.checkpoint_path.clear();
  return run(direct).fingerprint;
}

std::string make_spool(const std::string& name) {
  const std::string spool = testing::TempDir() + "rmp_chaos_" + name;
  fs::remove_all(spool);
  fs::create_directories(spool);
  return spool;
}

void submit(const std::string& spool, const std::string& id,
            const RunSpec& spec) {
  fs::create_directories(spool + "/jobs");
  std::ofstream out(spool + "/jobs/" + id + ".json");
  out << spec_to_json(spec).dump(2) << "\n";
}

ServeOptions worker_options(const std::string& spool, const std::string& owner,
                            std::int64_t lease_timeout_ms) {
  ServeOptions options;
  options.spool = spool;
  options.owner = owner;
  options.lease_timeout_ms = lease_timeout_ms;
  return options;
}

void drain(JobServer& server) {
  for (int round = 0; round < 400; ++round) {
    const TickReport report = server.tick();
    if (report.active == 0 && report.admitted == 0 && report.stepped == 0) {
      return;
    }
  }
  FAIL() << "server did not drain within the round budget";
}

std::uint64_t result_fingerprint(const std::string& spool,
                                 const std::string& id) {
  const core::Json doc =
      core::load_json_file(spool + "/results/" + id + ".json");
  return doc.at("fingerprint").as_u64();
}

std::size_t count_events(const std::string& spool, const std::string& id,
                         const std::string& type) {
  std::ifstream in(spool + "/events/" + id + ".jsonl");
  std::size_t count = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    try {
      if (core::Json::parse(line).at("type").as_string() == type) ++count;
    } catch (const core::JsonError&) {
    }
  }
  return count;
}

void expect_conformant(const std::string& spool) {
  const auto issues = verify_spool_traces(spool, /*require_terminal=*/true);
  for (const TraceIssue& issue : issues) {
    ADD_FAILURE() << issue.job << ":" << issue.line << ": " << issue.what;
  }
}

/// Recovery worker: reclaims the dead child's lease (zero timeout, aged a
/// few ms) and drains the spool.
void recover_and_drain(const std::string& spool) {
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  JobServer recovery(worker_options(spool, "recover", /*lease_timeout_ms=*/0));
  drain(recovery);
}

void assert_exactly_one_completion(const std::string& spool,
                                   const std::string& id,
                                   const RunSpec& spec) {
  EXPECT_TRUE(fs::exists(spool + "/results/" + id + ".json"));
  EXPECT_FALSE(fs::exists(spool + "/failed/" + id + ".json"));
  EXPECT_EQ(count_events(spool, id, "completed"), 1u);
  EXPECT_EQ(result_fingerprint(spool, id), direct_fingerprint(spec));
  expect_conformant(spool);
}

class ChaosDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

// ---- Kill point: crash during a checkpoint write (torn file) ------------

TEST_F(ChaosDeathTest, TornCheckpointWriteRecoversFromThePreviousOne) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("torn_ckpt");
  const RunSpec spec = chaos_spec(21);
  submit(spool, "chaos", spec);

  EXPECT_EXIT(
      {
        core::FaultInjector::instance().arm("checkpoint.write",
                                            core::FaultKind::kTorn,
                                            /*after=*/2);
        JobServer worker(worker_options(spool, "crashw", 30000));
        for (int i = 0; i < 10; ++i) (void)worker.tick();
        std::_Exit(0);  // not reached: the third checkpoint write tears
      },
      testing::ExitedWithCode(core::kFaultCrashExitCode),
      "crash at checkpoint.write");

  // The torn bytes landed at the FINAL checkpoint path; recovery must
  // quarantine them and fall back to the rotated previous checkpoint.
  recover_and_drain(spool);
  EXPECT_TRUE(fs::exists(spool + "/work/chaos.corrupt.0"));
  EXPECT_EQ(count_events(spool, "chaos", "quarantined"), 1u);
  EXPECT_EQ(count_events(spool, "chaos", "reclaimed"), 1u);
  assert_exactly_one_completion(spool, "chaos", spec);
}

// ---- Kill point: crash after the claim, before the first epoch ----------

TEST_F(ChaosDeathTest, CrashAfterClaimBeforeFirstEpochIsReAdopted) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("claim_crash");
  const RunSpec spec = chaos_spec(22);
  submit(spool, "chaos", spec);

  EXPECT_EXIT(
      {
        core::FaultInjector::instance().arm("job.claim",
                                            core::FaultKind::kCrash);
        JobServer worker(worker_options(spool, "crashw", 30000));
        (void)worker.tick();
        std::_Exit(0);  // not reached: the admission rename crashes
      },
      testing::ExitedWithCode(core::kFaultCrashExitCode),
      "crash at job.claim");

  // The claim exists but was never heartbeat-stamped (its content is still
  // the raw spec) — staleness falls back to the file mtime, and the
  // recovery worker re-adopts from the pristine spec.
  ASSERT_TRUE(fs::exists(spool + "/work/chaos.claim.crashw"));
  ASSERT_FALSE(fs::exists(spool + "/jobs/chaos.json"));
  recover_and_drain(spool);
  EXPECT_EQ(count_events(spool, "chaos", "reclaimed"), 1u);
  assert_exactly_one_completion(spool, "chaos", spec);
}

// ---- Kill point: crash between the result write and the claim unlink ----

TEST_F(ChaosDeathTest, CrashBetweenResultWriteAndUnlinkNeverCompletesTwice) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("result_crash");
  const RunSpec spec = chaos_spec(23);
  submit(spool, "chaos", spec);

  EXPECT_EXIT(
      {
        core::FaultInjector::instance().arm("result.rename",
                                            core::FaultKind::kCrash);
        JobServer worker(worker_options(spool, "crashw", 30000));
        for (int i = 0; i < 20; ++i) (void)worker.tick();
        std::_Exit(0);  // not reached: completion crashes post-result
      },
      testing::ExitedWithCode(core::kFaultCrashExitCode),
      "crash at result.rename");

  // Result on disk, claim still held by the dead worker, no completed
  // event yet.  The result artifact is the commit point: recovery must
  // finalize — remove the claim, log a recovered completion — and NOT run
  // the job a second time.
  ASSERT_TRUE(fs::exists(spool + "/results/chaos.json"));
  ASSERT_TRUE(fs::exists(spool + "/work/chaos.claim.crashw"));
  const auto result_bytes = fs::file_size(spool + "/results/chaos.json");

  recover_and_drain(spool);
  EXPECT_FALSE(fs::exists(spool + "/work/chaos.claim.recover"));
  EXPECT_EQ(fs::file_size(spool + "/results/chaos.json"), result_bytes);
  EXPECT_EQ(count_events(spool, "chaos", "completed"), 1u);
  assert_exactly_one_completion(spool, "chaos", spec);
}

// ---- Kill point: torn event append --------------------------------------

TEST_F(ChaosDeathTest, TornEventAppendIsRepairedOnAdoption) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("torn_event");
  const RunSpec spec = chaos_spec(24);
  submit(spool, "chaos", spec);

  EXPECT_EXIT(
      {
        core::FaultInjector::instance().arm("event.append",
                                            core::FaultKind::kTorn,
                                            /*after=*/2);
        JobServer worker(worker_options(spool, "crashw", 30000));
        for (int i = 0; i < 10; ++i) (void)worker.tick();
        std::_Exit(0);  // not reached: the third event append tears
      },
      testing::ExitedWithCode(core::kFaultCrashExitCode),
      "crash at event.append");

  // The stream ends in half a line; adoption appends the isolating
  // newline, the next event is a segment start, and the conformance
  // checker accepts exactly this shape (and only this shape).
  recover_and_drain(spool);
  EXPECT_EQ(count_events(spool, "chaos", "reclaimed"), 1u);
  assert_exactly_one_completion(spool, "chaos", spec);
}

// ---- Kill point: worker dies mid-epoch (the SIGKILL stand-in) -----------

TEST_F(ChaosDeathTest, WorkerKilledMidEpochIsReclaimedExactlyOnce) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("midepoch_kill");
  const RunSpec spec = chaos_spec(25);
  submit(spool, "chaos", spec);

  EXPECT_EXIT(
      {
        core::FaultInjector::instance().arm("solve.transient",
                                            core::FaultKind::kCrash,
                                            /*after=*/4);
        JobServer worker(worker_options(spool, "crashw", 30000));
        for (int i = 0; i < 10; ++i) (void)worker.tick();
        std::_Exit(0);  // not reached: the fifth epoch kills the worker
      },
      testing::ExitedWithCode(core::kFaultCrashExitCode),
      "crash at solve.transient");

  // Four epochs committed and checkpointed; the second worker re-adopts
  // the stale lease exactly once and the final fingerprint matches the
  // uninterrupted run bit-exactly.
  recover_and_drain(spool);
  EXPECT_EQ(count_events(spool, "chaos", "reclaimed"), 1u);
  EXPECT_EQ(count_events(spool, "chaos", "preempted"), 0u);
  assert_exactly_one_completion(spool, "chaos", spec);
}

// ---- Two workers racing one spool (no faults; runs in every build) ------

TEST(ChaosRaceTest, TwoWorkersRacingOneSpoolCompleteEveryJobOnce) {
  const std::string spool = make_spool("race");
  const RunSpec spec_a = chaos_spec(31);
  const RunSpec spec_b = chaos_spec(32, /*checkpoint_every=*/2);
  const RunSpec spec_c = chaos_spec(33, /*checkpoint_every=*/0);
  submit(spool, "ra", spec_a);
  submit(spool, "rb", spec_b);

  JobServer a(worker_options(spool, "workerA", 30000));
  JobServer b(worker_options(spool, "workerB", 30000));
  (void)a.tick();  // claims ra + rb
  submit(spool, "rc", spec_c);
  (void)b.tick();  // claims rc

  for (int round = 0;
       round < 400 && (a.active_jobs() > 0 || b.active_jobs() > 0); ++round) {
    (void)a.tick();
    (void)b.tick();
  }

  assert_exactly_one_completion(spool, "ra", spec_a);
  assert_exactly_one_completion(spool, "rb", spec_b);
  assert_exactly_one_completion(spool, "rc", spec_c);
}

// ---- Transient-vs-permanent taxonomy ------------------------------------

TEST(ChaosTaxonomyTest, TransientFailuresBackOffThenSucceedBitExactly) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("transient_ok");
  const RunSpec spec = chaos_spec(41);
  // Baseline BEFORE arming: the direct run steps through the same
  // solve.transient site.
  const std::uint64_t expected = direct_fingerprint(spec);
  submit(spool, "flaky", spec);

  core::FaultInjector::instance().arm("solve.transient",
                                      core::FaultKind::kFail,
                                      /*after=*/1, /*count=*/2);
  JobServer server(worker_options(spool, "workerA", 30000));
  std::size_t retried = 0;
  for (int round = 0; round < 400; ++round) {
    const TickReport report = server.tick();
    retried += report.retried;
    if (report.active == 0 && report.admitted == 0 && report.stepped == 0) {
      break;
    }
  }
  core::FaultInjector::instance().reset();

  // Two transient failures, two deterministic backoffs, then completion —
  // and the retries change nothing about the computed archive.
  EXPECT_EQ(retried, 2u);
  EXPECT_EQ(count_events(spool, "flaky", "retry"), 2u);
  EXPECT_EQ(result_fingerprint(spool, "flaky"), expected);
  expect_conformant(spool);
}

TEST(ChaosTaxonomyTest, PoisonJobsAreQuarantinedWithEvidenceAfterMaxAttempts) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const std::string spool = make_spool("poison");
  submit(spool, "poison", chaos_spec(42));

  core::FaultInjector::instance().arm("solve.transient",
                                      core::FaultKind::kFail,
                                      /*after=*/0, /*count=*/0);  // always
  ServeOptions options = worker_options(spool, "workerA", 30000);
  options.max_attempts = 3;
  JobServer server(options);
  for (int round = 0; round < 50; ++round) {
    const TickReport report = server.tick();
    if (report.failed > 0) break;
  }
  core::FaultInjector::instance().reset();

  // Quarantined into failed/ with the poison diagnosis and the evidence
  // (the claim doc, echoing the spec) preserved beside it.
  ASSERT_TRUE(fs::exists(spool + "/failed/poison.json"));
  EXPECT_FALSE(fs::exists(spool + "/results/poison.json"));
  const core::Json record = core::load_json_file(spool + "/failed/poison.json");
  EXPECT_NE(record.at("error").as_string().find("poison job"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(spool + "/failed/poison.spec.json"));
  EXPECT_EQ(count_events(spool, "poison", "retry"), 2u);
  EXPECT_EQ(count_events(spool, "poison", "failed"), 1u);
  expect_conformant(spool);
}

// ---- Satellite: truncated-checkpoint regression over byte boundaries ----

TEST(CheckpointTruncationTest, TruncationsAreNamedSpecErrorsWithTheOffset) {
  const std::string dir = testing::TempDir() + "rmp_chaos_truncate";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/ckpt.json";

  RunSpec spec = chaos_spec(51, /*checkpoint_every=*/0);
  spec.generations = 3;
  Session session(spec);
  session.step_epoch();
  ASSERT_TRUE(core::write_json_file(path, session.checkpoint()));
  const auto size = fs::file_size(path);
  ASSERT_GT(size, 16u);

  // Sampled truncation points across the file: every one must surface as
  // a SpecError naming the file and the parse byte offset — never a raw
  // JsonError and never a silent partial resume.
  for (const std::uintmax_t cut :
       {std::uintmax_t{1}, size / 4, size / 2, 3 * size / 4, size - 2}) {
    const std::string torn = dir + "/torn.json";
    fs::copy_file(path, torn, fs::copy_options::overwrite_existing);
    fs::resize_file(torn, cut);
    try {
      (void)Session::resume(load_checkpoint_file(torn));
      ADD_FAILURE() << "cut at byte " << cut << " was accepted";
    } catch (const SpecError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(torn), std::string::npos)
          << "error does not name the file: " << what;
      EXPECT_NE(what.find("byte"), std::string::npos)
          << "error does not locate the damage: " << what;
    }
  }

  // Boundary sanity: losing only the trailing newline is not damage.
  const std::string benign = dir + "/benign.json";
  fs::copy_file(path, benign, fs::copy_options::overwrite_existing);
  fs::resize_file(benign, size - 1);
  Session resumed = Session::resume(load_checkpoint_file(benign));
  EXPECT_EQ(resumed.epoch(), 1u);
}

}  // namespace
}  // namespace rmp::api
