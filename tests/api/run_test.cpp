// RunSpec JSON round-trip/defaulting/rejection, api::run reproducibility
// (the fingerprint acceptance criterion), and the unified Optimizer seam
// (observer hook, Pmo2-as-Optimizer).
#include "api/run.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "moo/pmo2.hpp"
#include "moo/testproblems.hpp"

namespace rmp::api {
namespace {

RunSpec small_zdt1_spec() {
  RunSpec spec;
  spec.problem = "zdt1?n=6";
  spec.optimizer = "pmo2?islands=2&population=12&migration_interval=4";
  spec.generations = 10;
  spec.seed = 11;
  spec.threads = 1;
  return spec;
}

TEST(RunSpecTest, DefaultsFromMinimalJson) {
  const RunSpec spec = spec_from_string(R"({"problem": "zdt1"})");
  EXPECT_EQ(spec.problem, "zdt1");
  EXPECT_EQ(spec.optimizer, "pmo2");
  EXPECT_EQ(spec.generations, 100u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.threads, 0u);
  EXPECT_FALSE(spec.include_decision_vectors);
  EXPECT_TRUE(spec.mining.enabled);
  EXPECT_EQ(spec.mining.metric, pareto::DistanceMetric::kEuclidean);
  EXPECT_FALSE(spec.robustness.enabled);
  EXPECT_EQ(spec.robustness.trials, 1000u);
  EXPECT_DOUBLE_EQ(spec.robustness.max_relative, 0.10);
  EXPECT_DOUBLE_EQ(spec.robustness.epsilon_fraction, 0.05);
  EXPECT_EQ(spec.robustness.surface_samples, 0u);
}

TEST(RunSpecTest, JsonRoundTripIsIdentity) {
  RunSpec spec = small_zdt1_spec();
  spec.mining.metric = pareto::DistanceMetric::kChebyshev;
  spec.robustness.enabled = true;
  spec.robustness.trials = 123;
  spec.robustness.surface_samples = 9;
  spec.include_decision_vectors = true;

  const RunSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(back.problem, spec.problem);
  EXPECT_EQ(back.optimizer, spec.optimizer);
  EXPECT_EQ(back.generations, spec.generations);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.include_decision_vectors, spec.include_decision_vectors);
  EXPECT_EQ(back.mining.enabled, spec.mining.enabled);
  EXPECT_EQ(back.mining.metric, spec.mining.metric);
  EXPECT_EQ(back.robustness.enabled, spec.robustness.enabled);
  EXPECT_EQ(back.robustness.trials, spec.robustness.trials);
  EXPECT_EQ(back.robustness.surface_samples, spec.robustness.surface_samples);
  // And the serialized form is stable.
  EXPECT_EQ(spec_to_json(back).dump(), spec_to_json(spec).dump());
}

TEST(RunSpecTest, RejectsBadSpecs) {
  // Not an object / missing problem.
  EXPECT_THROW((void)spec_from_string("[]"), SpecError);
  EXPECT_THROW((void)spec_from_string("{}"), SpecError);
  // Unknown keys (typos must fail loudly), wrong types, unknown names.
  EXPECT_THROW((void)spec_from_string(R"({"problem": "zdt1", "generatoins": 5})"),
               SpecError);
  EXPECT_THROW((void)spec_from_string(R"({"problem": "zdt1", "generations": "5"})"),
               SpecError);
  EXPECT_THROW((void)spec_from_string(R"({"problem": "zdt1", "generations": -5})"),
               SpecError);
  EXPECT_THROW((void)spec_from_string(R"({"problem": "nope"})"), SpecError);
  EXPECT_THROW((void)spec_from_string(R"({"problem": "zdt1", "optimizer": "sgd"})"),
               SpecError);
  // Parameter-key typos fail at spec-parse time too, before any compute.
  EXPECT_THROW((void)spec_from_string(R"({"problem": "zdt1?vars=9"})"), SpecError);
  EXPECT_THROW(
      (void)spec_from_string(R"({"problem": "zdt1", "optimizer": "pmo2?islnds=4"})"),
      SpecError);
  EXPECT_THROW(
      (void)spec_from_string(R"({"problem": "zdt1", "mining": {"metrik": "x"}})"),
      SpecError);
  EXPECT_THROW(
      (void)spec_from_string(R"({"problem": "zdt1", "robustness": {"trials": 1.5}})"),
      SpecError);
  // Malformed JSON reaches the caller as JsonError.
  EXPECT_THROW((void)spec_from_string(R"({"problem": )"), core::JsonError);
}

// The acceptance criterion: the same spec + seed reproduces the same archive
// fingerprint across invocations.
TEST(ApiRunTest, SameSpecSameFingerprint) {
  const RunSpec spec = small_zdt1_spec();
  const RunResult a = run(spec);
  const RunResult b = run(spec);
  ASSERT_FALSE(a.front.empty());
  EXPECT_NE(a.fingerprint, 0u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.front.size(), b.front.size());

  RunSpec reseeded = spec;
  reseeded.seed = 12;
  EXPECT_NE(run(reseeded).fingerprint, a.fingerprint);
}

TEST(ApiRunTest, EveryOptimizerRunsThroughTheSpecSeam) {
  for (const char* optimizer : {"nsga2", "spea2", "moead", "pmo2"}) {
    SCOPED_TRACE(optimizer);
    RunSpec spec;
    spec.problem = "schaffer";
    spec.optimizer = std::string(optimizer) + "?population=10";
    spec.generations = 5;
    spec.threads = 1;
    const RunResult result = run(spec);
    EXPECT_FALSE(result.front.empty());
    EXPECT_GT(result.evaluations, 0u);
    // Mining on by default: closest-to-ideal + one shadow min per objective.
    ASSERT_EQ(result.mined.size(), 3u);
    EXPECT_EQ(result.mined[0].selection, "closest-to-ideal");
  }
}

TEST(ApiRunTest, RobustnessStagesProduceYieldsAndSurface) {
  RunSpec spec = small_zdt1_spec();
  spec.robustness.enabled = true;
  spec.robustness.trials = 50;
  spec.robustness.surface_samples = 5;
  const RunResult result = run(spec);
  ASSERT_GE(result.mined.size(), 4u);  // ideal + 2 shadows + max-yield
  EXPECT_EQ(result.mined.back().selection, "max-yield");
  for (const auto& c : result.mined) {
    ASSERT_TRUE(c.yield.has_value()) << c.selection;
    EXPECT_GE(c.yield->gamma, 0.0);
    EXPECT_LE(c.yield->gamma, 1.0);
    EXPECT_EQ(c.yield->total_trials, 50u);
  }
  EXPECT_FALSE(result.surface.empty());
  // Robustness is seeded too: the whole result reproduces.
  const RunResult again = run(spec);
  ASSERT_EQ(again.mined.size(), result.mined.size());
  EXPECT_DOUBLE_EQ(again.mined[0].yield->gamma, result.mined[0].yield->gamma);
}

TEST(ApiRunTest, ResultJsonCarriesTheFingerprint) {
  RunSpec spec = small_zdt1_spec();
  spec.include_decision_vectors = true;
  const RunResult result = run(spec);
  const core::Json doc = core::Json::parse(result_to_json(result).dump());
  EXPECT_EQ(doc.at("fingerprint").as_u64(), result.fingerprint);
  EXPECT_EQ(doc.at("evaluations").as_size(), result.evaluations);
  EXPECT_EQ(doc.at("front").at("size").as_size(), result.front.size());
  EXPECT_EQ(doc.at("front").at("members").size(), result.front.size());
  // include_decision_vectors: front members carry their x.
  EXPECT_EQ(doc.at("front").at("members").at(0).at("x").size(), 6u);
  EXPECT_EQ(doc.at("mined").size(), result.mined.size());
  // The embedded spec round-trips to the spec that ran.
  const RunSpec echoed = spec_from_json(doc.at("spec"));
  EXPECT_EQ(echoed.problem, spec.problem);
  EXPECT_EQ(echoed.seed, spec.seed);
}

// Satellite: the base-interface observer hook fires once per committed
// generation for every engine, Pmo2 included (its epoch callback survives
// the Optimizer seam).
TEST(OptimizerSeamTest, ObserverFiresPerGenerationThroughBaseInterface) {
  const moo::Zdt1 problem(6);
  for (const char* name : {"nsga2", "pmo2"}) {
    SCOPED_TRACE(name);
    auto optimizer = OptimizerRegistry::global().make(
        std::string(name) + "?population=8", problem, OptimizerContext{3, 1});
    std::size_t calls = 0;
    std::size_t last_gen = 0;
    moo::Optimizer& base = *optimizer;
    base.run(4, [&](std::size_t gen, const moo::Optimizer& state) {
      ++calls;
      last_gen = gen;
      EXPECT_FALSE(state.population().empty());
      EXPECT_GT(state.evaluations(), 0u);
    });
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_gen, 4u);
  }
}

TEST(OptimizerSeamTest, Pmo2PopulationIsTheArchiveView) {
  const moo::Zdt1 problem(6);
  moo::Pmo2Options options;
  options.islands = 2;
  options.island_threads = 1;
  moo::Pmo2 pmo2(problem, options, moo::Pmo2::default_nsga2_factory(10));
  pmo2.run(3);
  const moo::Optimizer& base = pmo2;
  EXPECT_EQ(base.population().data(), pmo2.archive().solutions().data());
  EXPECT_EQ(base.population().size(), pmo2.archive().size());
  EXPECT_EQ(base.name(), "PMO2");
}

TEST(OptimizerSeamTest, Pmo2InjectSpreadsRoundRobinAndArchives) {
  const moo::Zdt1 problem(2);
  moo::Pmo2Options options;
  options.islands = 2;
  options.island_threads = 1;
  options.migration_interval = 0;  // isolate inject from migration
  moo::Pmo2 pmo2(problem, options, moo::Pmo2::default_nsga2_factory(6));
  pmo2.initialize();

  // A hand-made non-dominated immigrant that beats everything: f = (0, ~0).
  moo::Individual star;
  star.x = num::Vec{0.0, 0.0};
  star.f = num::Vec(2);
  star.violation = problem.evaluate(star.x, star.f);
  ASSERT_EQ(star.violation, 0.0);

  const std::size_t before = pmo2.archive().size();
  pmo2.inject(std::span<const moo::Individual>(&star, 1));
  // The immigrant enters the archive (it dominates the f1-extreme corner
  // unless that corner is already optimal) and island 0's population.
  bool in_island0 = false;
  for (const auto& resident : pmo2.island(0).population()) {
    if (resident.x == star.x) in_island0 = true;
  }
  EXPECT_TRUE(in_island0);
  EXPECT_GE(pmo2.archive().size(), 1u);
  (void)before;
}

}  // namespace
}  // namespace rmp::api
