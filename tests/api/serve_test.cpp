// api::JobServer — spool admission, epoch-fair round-robin, checkpointed
// kill/restart recovery, event streams, and the failed-job path.  tick() is
// deterministic, so everything here runs without signals, sleeps, or real
// daemon processes (ci/build.sh smokes the actual rmp_serve binary with a
// real SIGTERM).
#include "api/serve.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/run.hpp"
#include "api/spec.hpp"
#include "core/json.hpp"

namespace rmp::api {
namespace {

namespace fs = std::filesystem;

RunSpec job_spec(std::uint64_t seed) {
  RunSpec spec;
  spec.problem = "zdt1?n=6";
  spec.optimizer = "nsga2?population=16";
  spec.generations = 8;
  spec.seed = seed;
  spec.threads = 1;
  return spec;
}

/// Fresh spool directory per test case.
std::string make_spool(const std::string& name) {
  const std::string spool = testing::TempDir() + "rmp_serve_" + name;
  fs::remove_all(spool);
  fs::create_directories(spool);
  return spool;
}

void submit(const std::string& spool, const std::string& id,
            const core::Json& doc) {
  fs::create_directories(spool + "/jobs");
  std::ofstream out(spool + "/jobs/" + id + ".json");
  out << doc.dump(2) << "\n";
}

/// Ticks until the spool drains (or the round budget proves it wedged).
void drain(JobServer& server) {
  for (int round = 0; round < 200; ++round) {
    const TickReport report = server.tick();
    if (report.active == 0 && report.admitted == 0 && report.stepped == 0) {
      return;
    }
  }
  FAIL() << "server did not drain within the round budget";
}

std::uint64_t result_fingerprint(const std::string& spool,
                                 const std::string& id) {
  const core::Json doc =
      core::load_json_file(spool + "/results/" + id + ".json");
  return doc.at("fingerprint").as_u64();
}

TEST(JobServerTest, TwoJobsDrainToValidatedResults) {
  const std::string spool = make_spool("two_jobs");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  submit(spool, "beta", spec_to_json(job_spec(12)));

  JobServer server(ServeOptions{spool});
  drain(server);

  // Both results validate and match a direct api::run of the same spec.
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  EXPECT_EQ(result_fingerprint(spool, "beta"), run(job_spec(12)).fingerprint);
  // Completed jobs leave the queue and the work directory.
  EXPECT_FALSE(fs::exists(spool + "/jobs/alpha.json"));
  EXPECT_FALSE(fs::exists(spool + "/work/alpha.checkpoint.json"));
}

TEST(JobServerTest, RoundRobinInterleavesJobsFairly) {
  const std::string spool = make_spool("fairness");
  submit(spool, "a", spec_to_json(job_spec(1)));
  submit(spool, "b", spec_to_json(job_spec(2)));

  JobServer server(ServeOptions{spool});
  const TickReport first = server.tick();
  EXPECT_EQ(first.admitted, 2u);
  // One epoch per active job per round — neither job can starve the other.
  EXPECT_EQ(first.stepped, 2u);
  EXPECT_EQ(server.tick().stepped, 2u);
}

TEST(JobServerTest, KillAndRestartResumesFromCheckpointsBitExactly) {
  const std::string spool = make_spool("kill_restart");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  submit(spool, "beta", spec_to_json(job_spec(12)));

  {
    // First server instance: stepped a few epochs, then "killed" — the
    // shutdown drain writes work/ checkpoints mid-run.
    JobServer first(ServeOptions{spool});
    (void)first.tick();
    (void)first.tick();
    (void)first.tick();
    EXPECT_EQ(first.active_jobs(), 2u);
    first.checkpoint_all();
  }
  ASSERT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  ASSERT_TRUE(fs::exists(spool + "/work/beta.checkpoint.json"));

  // Second instance: resumes the spooled checkpoints, drains both jobs.
  JobServer second(ServeOptions{spool});
  drain(second);
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  EXPECT_EQ(result_fingerprint(spool, "beta"), run(job_spec(12)).fingerprint);
}

TEST(JobServerTest, StepLimitStopsTheRunLoopWithCheckpoints) {
  const std::string spool = make_spool("step_limit");
  submit(spool, "alpha", spec_to_json(job_spec(11)));

  ServeOptions options{spool};
  options.step_limit = 3;
  options.drain = true;
  JobServer server(options);
  const std::atomic<bool> stop{false};
  server.run(stop);

  EXPECT_EQ(server.total_stepped(), 3u);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  EXPECT_FALSE(fs::exists(spool + "/results/alpha.json"));
}

TEST(JobServerTest, EventStreamCarriesPerEpochProgress) {
  const std::string spool = make_spool("events");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  JobServer server(ServeOptions{spool});
  drain(server);

  std::ifstream in(spool + "/events/alpha.jsonl");
  ASSERT_TRUE(in.is_open());
  std::vector<core::Json> events;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) events.push_back(core::Json::parse(line));
  }
  // One admission event (epoch 0) plus one per committed epoch.
  ASSERT_EQ(events.size(), job_spec(11).generations + 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("epoch").as_size(), i);
    EXPECT_EQ(events[i].at("job").as_string(), "alpha");
    // Every event carries the full cumulative accounting breakdown.
    const core::Json& stats = events[i].at("eval_stats");
    EXPECT_GE(stats.at("evaluations").as_size(),
              i > 0 ? events[i - 1].at("eval_stats").at("evaluations").as_size()
                    : 0u);
  }
}

TEST(JobServerTest, MalformedJobsFailLoudlyAndKeepTheSchedulerAlive) {
  const std::string spool = make_spool("bad_jobs");
  fs::create_directories(spool + "/jobs");
  {
    std::ofstream out(spool + "/jobs/broken.json");
    out << "{not json";
  }
  {
    std::ofstream out(spool + "/jobs/typo.json");
    out << R"({"problem": "zdt1", "generatoins": 5})";
  }
  submit(spool, "good", spec_to_json(job_spec(11)));

  JobServer server(ServeOptions{spool});
  drain(server);

  // Bad jobs moved aside with a named error; the good one still completed.
  EXPECT_TRUE(fs::exists(spool + "/failed/broken.json"));
  EXPECT_TRUE(fs::exists(spool + "/failed/typo.json"));
  EXPECT_FALSE(fs::exists(spool + "/jobs/typo.json"));
  const core::Json typo = core::load_json_file(spool + "/failed/typo.json");
  EXPECT_NE(typo.at("error").as_string().find("generatoins"), std::string::npos);
  EXPECT_TRUE(fs::exists(spool + "/results/good.json"));
}

TEST(JobServerTest, MismatchedCheckpointFailsTheJobInsteadOfRestarting) {
  const std::string spool = make_spool("bad_ckpt");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  {
    JobServer first(ServeOptions{spool});
    (void)first.tick();
    first.checkpoint_all();
  }
  // Corrupt the spooled checkpoint's spec hash; the restarted server must
  // reject the resume with the named error, not silently restart the run.
  const std::string ckpt_path = spool + "/work/alpha.checkpoint.json";
  core::Json ckpt = core::load_json_file(ckpt_path);
  ckpt.set("spec_hash", core::Json::hex(0x1234ULL));
  ASSERT_TRUE(core::write_json_file(ckpt_path, ckpt));

  JobServer second(ServeOptions{spool});
  drain(second);
  ASSERT_TRUE(fs::exists(spool + "/failed/alpha.json"));
  const core::Json failed = core::load_json_file(spool + "/failed/alpha.json");
  EXPECT_NE(failed.at("error").as_string().find("spec_hash"), std::string::npos);
  EXPECT_FALSE(fs::exists(spool + "/results/alpha.json"));
}

TEST(JobServerTest, SpecCheckpointCadenceWritesWorkFiles) {
  const std::string spool = make_spool("cadence");
  RunSpec spec = job_spec(11);
  spec.checkpoint_every = 2;
  submit(spool, "alpha", spec_to_json(spec));

  JobServer server(ServeOptions{spool});
  (void)server.tick();  // admit + epoch 1: no checkpoint yet
  EXPECT_FALSE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  (void)server.tick();  // epoch 2: cadence hit
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
}

}  // namespace
}  // namespace rmp::api
