// api::JobServer — spool admission via rename-claims, epoch-fair
// round-robin, checkpointed kill/restart recovery, multi-worker leases,
// torn-checkpoint quarantine, event streams, and the failed-job path.
// tick() is deterministic, so everything here runs without signals or real
// daemon processes (ci/build.sh smokes the actual rmp_serve binary with a
// real SIGTERM, and chaos_test.cpp drives the injected-crash matrix).
#include "api/serve.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/run.hpp"
#include "api/spec.hpp"
#include "api/trace.hpp"
#include "core/json.hpp"

namespace rmp::api {
namespace {

namespace fs = std::filesystem;

RunSpec job_spec(std::uint64_t seed) {
  RunSpec spec;
  spec.problem = "zdt1?n=6";
  spec.optimizer = "nsga2?population=16";
  spec.generations = 8;
  spec.seed = seed;
  spec.threads = 1;
  return spec;
}

/// Fresh spool directory per test case.
std::string make_spool(const std::string& name) {
  const std::string spool = testing::TempDir() + "rmp_serve_" + name;
  fs::remove_all(spool);
  fs::create_directories(spool);
  return spool;
}

void submit(const std::string& spool, const std::string& id,
            const core::Json& doc) {
  fs::create_directories(spool + "/jobs");
  std::ofstream out(spool + "/jobs/" + id + ".json");
  out << doc.dump(2) << "\n";
}

/// Ticks until the spool drains (or the round budget proves it wedged).
void drain(JobServer& server) {
  for (int round = 0; round < 200; ++round) {
    const TickReport report = server.tick();
    if (report.active == 0 && report.admitted == 0 && report.stepped == 0) {
      return;
    }
  }
  FAIL() << "server did not drain within the round budget";
}

std::uint64_t result_fingerprint(const std::string& spool,
                                 const std::string& id) {
  const core::Json doc =
      core::load_json_file(spool + "/results/" + id + ".json");
  return doc.at("fingerprint").as_u64();
}

ServeOptions worker_options(const std::string& spool, const std::string& owner,
                            std::int64_t lease_timeout_ms = 30000) {
  ServeOptions options;
  options.spool = spool;
  options.owner = owner;
  options.lease_timeout_ms = lease_timeout_ms;
  return options;
}

std::size_t count_events(const std::string& spool, const std::string& id,
                         const std::string& type) {
  std::ifstream in(spool + "/events/" + id + ".jsonl");
  std::size_t count = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    try {
      if (core::Json::parse(line).at("type").as_string() == type) ++count;
    } catch (const core::JsonError&) {
    }
  }
  return count;
}

void expect_conformant(const std::string& spool) {
  const auto issues = verify_spool_traces(spool, /*require_terminal=*/true);
  for (const TraceIssue& issue : issues) {
    ADD_FAILURE() << issue.job << ":" << issue.line << ": " << issue.what;
  }
}

TEST(JobServerTest, TwoJobsDrainToValidatedResults) {
  const std::string spool = make_spool("two_jobs");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  submit(spool, "beta", spec_to_json(job_spec(12)));

  JobServer server(ServeOptions{spool});
  drain(server);

  // Both results validate and match a direct api::run of the same spec.
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  EXPECT_EQ(result_fingerprint(spool, "beta"), run(job_spec(12)).fingerprint);
  // Completed jobs leave the queue and the work directory.
  EXPECT_FALSE(fs::exists(spool + "/jobs/alpha.json"));
  EXPECT_FALSE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  // The drained spool's event streams conform to the protocol grammar.
  expect_conformant(spool);
}

TEST(JobServerTest, RoundRobinInterleavesJobsFairly) {
  const std::string spool = make_spool("fairness");
  submit(spool, "a", spec_to_json(job_spec(1)));
  submit(spool, "b", spec_to_json(job_spec(2)));

  JobServer server(ServeOptions{spool});
  const TickReport first = server.tick();
  EXPECT_EQ(first.admitted, 2u);
  // One epoch per active job per round — neither job can starve the other.
  EXPECT_EQ(first.stepped, 2u);
  EXPECT_EQ(server.tick().stepped, 2u);
}

TEST(JobServerTest, KillAndRestartResumesFromCheckpointsBitExactly) {
  const std::string spool = make_spool("kill_restart");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  submit(spool, "beta", spec_to_json(job_spec(12)));

  {
    // First server instance: stepped a few epochs, then "killed" — the
    // shutdown drain writes work/ checkpoints mid-run.
    JobServer first(ServeOptions{spool});
    (void)first.tick();
    (void)first.tick();
    (void)first.tick();
    EXPECT_EQ(first.active_jobs(), 2u);
    first.checkpoint_all();
  }
  ASSERT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  ASSERT_TRUE(fs::exists(spool + "/work/beta.checkpoint.json"));

  // Second instance: resumes the spooled checkpoints, drains both jobs.
  JobServer second(ServeOptions{spool});
  drain(second);
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  EXPECT_EQ(result_fingerprint(spool, "beta"), run(job_spec(12)).fingerprint);
}

TEST(JobServerTest, StepLimitStopsTheRunLoopWithCheckpoints) {
  const std::string spool = make_spool("step_limit");
  submit(spool, "alpha", spec_to_json(job_spec(11)));

  ServeOptions options{spool};
  options.step_limit = 3;
  options.drain = true;
  JobServer server(options);
  const std::atomic<bool> stop{false};
  server.run(stop);

  EXPECT_EQ(server.total_stepped(), 3u);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  EXPECT_FALSE(fs::exists(spool + "/results/alpha.json"));
}

TEST(JobServerTest, EventStreamCarriesPerEpochProgress) {
  const std::string spool = make_spool("events");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  JobServer server(ServeOptions{spool});
  drain(server);

  std::ifstream in(spool + "/events/alpha.jsonl");
  ASSERT_TRUE(in.is_open());
  std::vector<core::Json> events;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) events.push_back(core::Json::parse(line));
  }
  // admitted(0), one "epoch" event per committed epoch, completed terminal.
  const std::size_t generations = job_spec(11).generations;
  ASSERT_EQ(events.size(), generations + 2);
  EXPECT_EQ(events.front().at("type").as_string(), "admitted");
  EXPECT_EQ(events.front().at("epoch").as_size(), 0u);
  EXPECT_EQ(events.back().at("type").as_string(), "completed");
  EXPECT_EQ(events.back().at("epoch").as_size(), generations);
  for (std::size_t i = 1; i <= generations; ++i) {
    EXPECT_EQ(events[i].at("type").as_string(), "epoch");
    EXPECT_EQ(events[i].at("epoch").as_size(), i);
    EXPECT_EQ(events[i].at("job").as_string(), "alpha");
    EXPECT_FALSE(events[i].at("worker").as_string().empty());
    // Every progress event carries the full cumulative accounting breakdown.
    const core::Json& stats = events[i].at("eval_stats");
    EXPECT_GE(stats.at("evaluations").as_size(),
              i > 1 ? events[i - 1].at("eval_stats").at("evaluations").as_size()
                    : 0u);
  }
  expect_conformant(spool);
}

TEST(JobServerTest, MalformedJobsFailLoudlyAndKeepTheSchedulerAlive) {
  const std::string spool = make_spool("bad_jobs");
  fs::create_directories(spool + "/jobs");
  {
    std::ofstream out(spool + "/jobs/broken.json");
    out << "{not json";
  }
  {
    std::ofstream out(spool + "/jobs/typo.json");
    out << R"({"problem": "zdt1", "generatoins": 5})";
  }
  submit(spool, "good", spec_to_json(job_spec(11)));

  JobServer server(ServeOptions{spool});
  drain(server);

  // Bad jobs moved aside with a named error; the good one still completed.
  EXPECT_TRUE(fs::exists(spool + "/failed/broken.json"));
  EXPECT_TRUE(fs::exists(spool + "/failed/typo.json"));
  EXPECT_FALSE(fs::exists(spool + "/jobs/typo.json"));
  const core::Json typo = core::load_json_file(spool + "/failed/typo.json");
  EXPECT_NE(typo.at("error").as_string().find("generatoins"), std::string::npos);
  EXPECT_TRUE(fs::exists(spool + "/results/good.json"));
}

TEST(JobServerTest, CorruptCheckpointIsQuarantinedAndTheJobRecovers) {
  const std::string spool = make_spool("bad_ckpt");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  {
    JobServer first(ServeOptions{spool});
    (void)first.tick();
    first.checkpoint_all();
  }
  // Corrupt the spooled checkpoint's spec hash.  The restarted server must
  // neither trust it (silent divergence) nor lose the job: the bad file is
  // quarantined as work/alpha.corrupt.0 and the run falls back — here to
  // the pristine spec, since no previous checkpoint exists.
  const std::string ckpt_path = spool + "/work/alpha.checkpoint.json";
  core::Json ckpt = core::load_json_file(ckpt_path);
  ckpt.set("spec_hash", core::Json::hex(0x1234ULL));
  ASSERT_TRUE(core::write_json_file(ckpt_path, ckpt));

  JobServer second(ServeOptions{spool});
  drain(second);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.corrupt.0"));
  EXPECT_FALSE(fs::exists(spool + "/failed/alpha.json"));
  EXPECT_EQ(count_events(spool, "alpha", "quarantined"), 1u);
  // The recovered run reproduces the uninterrupted fingerprint bit-exactly.
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
}

TEST(JobServerTest, TruncatedCheckpointIsQuarantinedAndTheJobRecovers) {
  const std::string spool = make_spool("torn_ckpt");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  {
    JobServer first(ServeOptions{spool});
    (void)first.tick();
    first.checkpoint_all();
  }
  // Tear the checkpoint mid-file, as a power loss would.
  const std::string ckpt_path = spool + "/work/alpha.checkpoint.json";
  const auto size = fs::file_size(ckpt_path);
  fs::resize_file(ckpt_path, size / 3);

  JobServer second(ServeOptions{spool});
  drain(second);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.corrupt.0"));
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  expect_conformant(spool);
}

TEST(JobServerTest, TwoWorkersShareOneSpoolWithoutDoubleRunning) {
  const std::string spool = make_spool("two_workers");
  submit(spool, "alpha", spec_to_json(job_spec(11)));
  submit(spool, "beta", spec_to_json(job_spec(12)));

  JobServer a(worker_options(spool, "workerA"));
  JobServer b(worker_options(spool, "workerB"));

  // Whoever scans first claims; the other worker must admit nothing (the
  // rename-claim is the mutual exclusion) and both jobs complete exactly
  // once with the uninterrupted fingerprints.
  const TickReport first_a = a.tick();
  EXPECT_EQ(first_a.admitted, 2u);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.claim.workerA"));
  const TickReport first_b = b.tick();
  EXPECT_EQ(first_b.admitted, 0u);
  EXPECT_EQ(first_b.stepped, 0u);

  for (int round = 0; round < 200 && a.active_jobs() > 0; ++round) {
    (void)a.tick();
    (void)b.tick();
  }
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  EXPECT_EQ(result_fingerprint(spool, "beta"), run(job_spec(12)).fingerprint);
  EXPECT_EQ(count_events(spool, "alpha", "completed"), 1u);
  EXPECT_EQ(count_events(spool, "beta", "completed"), 1u);
  expect_conformant(spool);
}

TEST(JobServerTest, DrainReleasesClaimsForImmediateReAdoption) {
  const std::string spool = make_spool("release");
  submit(spool, "alpha", spec_to_json(job_spec(11)));

  JobServer a(worker_options(spool, "workerA"));
  (void)a.tick();
  (void)a.tick();
  a.checkpoint_all();  // graceful drain: checkpoint + release the claim

  EXPECT_FALSE(fs::exists(spool + "/work/alpha.claim.workerA"));
  EXPECT_TRUE(fs::exists(spool + "/jobs/alpha.json"));
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  EXPECT_EQ(count_events(spool, "alpha", "released"), 1u);

  // A different worker re-adopts with no lease timeout involved.
  JobServer b(worker_options(spool, "workerB"));
  const TickReport report = b.tick();
  EXPECT_EQ(report.admitted, 1u);
  EXPECT_EQ(report.reclaimed, 0u);
  EXPECT_EQ(count_events(spool, "alpha", "resumed"), 1u);
  drain(b);
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  expect_conformant(spool);
}

TEST(JobServerTest, StaleLeaseIsReclaimedExactlyOnceBitExactly) {
  const std::string spool = make_spool("stale_lease");
  RunSpec spec = job_spec(11);
  spec.checkpoint_every = 1;
  submit(spool, "alpha", spec_to_json(spec));

  {
    // Worker A claims the job, commits three epochs, then dies without
    // draining — its claim (and heartbeat) stay behind in work/.
    JobServer a(worker_options(spool, "workerA"));
    (void)a.tick();
    (void)a.tick();
    (void)a.tick();
    EXPECT_EQ(a.active_jobs(), 1u);
  }
  ASSERT_TRUE(fs::exists(spool + "/work/alpha.claim.workerA"));

  // Let the heartbeat age past the (zero) lease timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  JobServer b(worker_options(spool, "workerB", /*lease_timeout_ms=*/0));
  const TickReport report = b.tick();
  EXPECT_EQ(report.reclaimed, 1u);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.claim.workerB"));
  EXPECT_FALSE(fs::exists(spool + "/work/alpha.claim.workerA"));
  drain(b);

  // Re-adopted exactly once, finished exactly once, bit-exact result.
  EXPECT_EQ(count_events(spool, "alpha", "reclaimed"), 1u);
  EXPECT_EQ(count_events(spool, "alpha", "completed"), 1u);
  EXPECT_EQ(result_fingerprint(spool, "alpha"), run(job_spec(11)).fingerprint);
  expect_conformant(spool);
}

TEST(JobServerTest, FreshForeignClaimIsNotReclaimed) {
  const std::string spool = make_spool("fresh_lease");
  submit(spool, "alpha", spec_to_json(job_spec(11)));

  JobServer a(worker_options(spool, "workerA"));
  (void)a.tick();  // claims + stamps a fresh heartbeat

  JobServer b(worker_options(spool, "workerB"));  // default 30s lease
  const TickReport report = b.tick();
  EXPECT_EQ(report.admitted, 0u);
  EXPECT_EQ(report.reclaimed, 0u);
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.claim.workerA"));
}

TEST(JobServerTest, SpecCheckpointCadenceWritesWorkFiles) {
  const std::string spool = make_spool("cadence");
  RunSpec spec = job_spec(11);
  spec.checkpoint_every = 2;
  submit(spool, "alpha", spec_to_json(spec));

  JobServer server(ServeOptions{spool});
  (void)server.tick();  // admit + epoch 1: no checkpoint yet
  EXPECT_FALSE(fs::exists(spool + "/work/alpha.checkpoint.json"));
  (void)server.tick();  // epoch 2: cadence hit
  EXPECT_TRUE(fs::exists(spool + "/work/alpha.checkpoint.json"));
}

}  // namespace
}  // namespace rmp::api
