#include "moo/testproblems.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numeric/rng.hpp"

namespace rmp::moo {
namespace {

num::Vec eval(const Problem& p, const num::Vec& x) {
  num::Vec f(p.num_objectives());
  EXPECT_DOUBLE_EQ(p.evaluate(x, f), 0.0);
  return f;
}

TEST(ZdtFormulaTest, Zdt1KnownFrontPoints) {
  // On the Pareto set (x1..xn = 0): f2 = 1 - sqrt(f1).
  const Zdt1 p(10);
  for (const double x0 : {0.0, 0.25, 0.49, 1.0}) {
    num::Vec x(10, 0.0);
    x[0] = x0;
    const num::Vec f = eval(p, x);
    EXPECT_DOUBLE_EQ(f[0], x0);
    EXPECT_NEAR(f[1], 1.0 - std::sqrt(x0), 1e-12);
  }
}

TEST(ZdtFormulaTest, Zdt2KnownFrontPoints) {
  const Zdt2 p(10);
  num::Vec x(10, 0.0);
  x[0] = 0.5;
  const num::Vec f = eval(p, x);
  EXPECT_NEAR(f[1], 1.0 - 0.25, 1e-12);
}

TEST(ZdtFormulaTest, Zdt3OscillatingTerm) {
  const Zdt3 p(10);
  num::Vec x(10, 0.0);
  x[0] = 0.2;
  const num::Vec f = eval(p, x);
  EXPECT_NEAR(f[1],
              1.0 - std::sqrt(0.2) - 0.2 * std::sin(10.0 * std::numbers::pi * 0.2),
              1e-12);
}

TEST(ZdtFormulaTest, Zdt4GAtOptimum) {
  const Zdt4 p(6);
  num::Vec x(6, 0.0);
  x[0] = 0.36;
  const num::Vec f = eval(p, x);
  // g = 1 at the optimum (all xi = 0 for i >= 1).
  EXPECT_NEAR(f[1], 1.0 - std::sqrt(0.36), 1e-12);
}

TEST(ZdtFormulaTest, Zdt4BoundsAsymmetric) {
  const Zdt4 p(6);
  EXPECT_DOUBLE_EQ(p.lower_bounds()[0], 0.0);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(p.lower_bounds()[1], -5.0);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[1], 5.0);
}

TEST(ZdtFormulaTest, Zdt6NonUniform) {
  const Zdt6 p(6);
  num::Vec x(6, 0.0);
  const num::Vec f = eval(p, x);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // 1 - exp(0)*sin(0)^6 = 1
}

TEST(DtlzTest, Dtlz2SphericalFrontAtOptimum) {
  const Dtlz2 p(12, 3);
  num::Vec x(12, 0.5);  // distance variables at 0.5 -> g = 0
  const num::Vec f = eval(p, x);
  EXPECT_NEAR(num::dot(f, f), 1.0, 1e-9);  // sum f_i^2 = 1
}

TEST(SchafferTest, MinimaAtZeroAndTwo) {
  const Schaffer p;
  EXPECT_DOUBLE_EQ(eval(p, {0.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(eval(p, {2.0})[1], 0.0);
}

TEST(KursaweTest, FiniteOverBox) {
  const Kursawe p;
  num::Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    num::Vec x{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    num::Vec f(2);
    (void)p.evaluate(x, f);
    EXPECT_TRUE(num::all_finite(f));
  }
}

TEST(BinhKornTest, ConstraintViolationSemantics) {
  const BinhKorn p;
  num::Vec f(2);
  // (0, 0) is feasible (inside circle 1, outside circle 2).
  EXPECT_DOUBLE_EQ(p.evaluate(num::Vec{0.0, 0.0}, f), 0.0);
  // (5, 3) violates g1: (0)^2 + 9 <= 25 ok... pick a violating point (0, 3):
  // g1 = 25 + 9 - 25 = 9 > 0.
  EXPECT_GT(p.evaluate(num::Vec{0.0, 3.0}, f), 0.0);
}

TEST(ProblemNamesTest, AllNamed) {
  EXPECT_EQ(Zdt1(5).name(), "ZDT1");
  EXPECT_EQ(Zdt4(5).name(), "ZDT4");
  EXPECT_EQ(Dtlz2(7, 3).name(), "DTLZ2");
  EXPECT_EQ(Schaffer().name(), "Schaffer");
  EXPECT_EQ(BinhKorn().name(), "Binh-Korn");
}

}  // namespace
}  // namespace rmp::moo
