#include "moo/archive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/dominance.hpp"
#include "numeric/rng.hpp"

namespace rmp::moo {
namespace {

Individual make(double f0, double f1, double violation = 0.0) {
  Individual ind;
  ind.f = {f0, f1};
  ind.x = {f0, f1};
  ind.violation = violation;
  return ind;
}

TEST(ArchiveTest, AcceptsNondominated) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 3.0)));
  EXPECT_TRUE(a.offer(make(3.0, 1.0)));
  EXPECT_EQ(a.size(), 2u);
}

TEST(ArchiveTest, RejectsDominated) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 1.0)));
  EXPECT_FALSE(a.offer(make(2.0, 2.0)));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ArchiveTest, EvictsDominatedResidents) {
  Archive a;
  EXPECT_TRUE(a.offer(make(2.0, 2.0)));
  EXPECT_TRUE(a.offer(make(3.0, 1.0)));
  EXPECT_TRUE(a.offer(make(1.0, 1.0)));  // dominates both
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.solutions()[0].f, (num::Vec{1.0, 1.0}));
}

TEST(ArchiveTest, RejectsInfeasible) {
  Archive a;
  EXPECT_FALSE(a.offer(make(0.0, 0.0, /*violation=*/1.0)));
  EXPECT_TRUE(a.empty());
}

TEST(ArchiveTest, RejectsObjectiveDuplicates) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 2.0)));
  EXPECT_FALSE(a.offer(make(1.0, 2.0)));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ArchiveTest, CapacityPruningKeepsExtremes) {
  Archive a(5);
  // A dense front: f1 = 10 - f0.
  for (int i = 0; i <= 20; ++i) {
    const double f0 = static_cast<double>(i) * 0.5;
    a.offer(make(f0, 10.0 - f0));
  }
  EXPECT_EQ(a.size(), 5u);
  bool has_left = false, has_right = false;
  for (const Individual& m : a.solutions()) {
    if (m.f[0] == 0.0) has_left = true;
    if (m.f[0] == 10.0) has_right = true;
  }
  EXPECT_TRUE(has_left);
  EXPECT_TRUE(has_right);
}

TEST(ArchiveTest, UnboundedGrowth) {
  Archive a(0);
  for (int i = 0; i <= 300; ++i) {
    const double f0 = static_cast<double>(i);
    a.offer(make(f0, 300.0 - f0));
  }
  EXPECT_EQ(a.size(), 301u);
}

TEST(ArchiveTest, ArchiveIsAlwaysMutuallyNondominated) {
  num::Rng rng(3);
  Archive a(50);
  for (int i = 0; i < 1000; ++i) {
    a.offer(make(rng.uniform(), rng.uniform()));
  }
  const auto sols = a.solutions();
  for (std::size_t p = 0; p < sols.size(); ++p) {
    for (std::size_t q = 0; q < sols.size(); ++q) {
      if (p != q) {
        EXPECT_FALSE(dominates(sols[p].f, sols[q].f));
      }
    }
  }
  EXPECT_LE(a.size(), 50u);
}

TEST(ArchiveTest, OfferAllFromPopulation) {
  std::vector<Individual> pop{make(1.0, 5.0), make(2.0, 2.0), make(5.0, 1.0),
                              make(3.0, 3.0)};  // last dominated by (2,2)
  Archive a;
  a.offer_all(pop);
  EXPECT_EQ(a.size(), 3u);
}

TEST(ArchiveTest, FingerprintTracksContentAndOrder) {
  Archive a;
  a.offer(make(1.0, 3.0));
  a.offer(make(3.0, 1.0));
  Archive b;
  b.offer(make(1.0, 3.0));
  b.offer(make(3.0, 1.0));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Insertion order is part of the identity (the ordered-merge contract).
  Archive reversed;
  reversed.offer(make(3.0, 1.0));
  reversed.offer(make(1.0, 3.0));
  EXPECT_NE(a.fingerprint(), reversed.fingerprint());

  // Any single-bit change in a member changes the hash.
  Archive tweaked;
  tweaked.offer(make(1.0, 3.0));
  tweaked.offer(make(std::nextafter(3.0, 4.0), 1.0));
  EXPECT_NE(a.fingerprint(), tweaked.fingerprint());

  EXPECT_EQ(Archive().fingerprint(), Archive().fingerprint());
}

TEST(ArchiveTest, ClearEmpties) {
  Archive a;
  a.offer(make(1.0, 1.0));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.offer(make(2.0, 2.0)));
}

}  // namespace
}  // namespace rmp::moo
