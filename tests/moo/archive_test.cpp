#include "moo/archive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/json.hpp"
#include "moo/dominance.hpp"
#include "moo/state.hpp"
#include "numeric/rng.hpp"

namespace rmp::moo {
namespace {

Individual make(double f0, double f1, double violation = 0.0) {
  Individual ind;
  ind.f = {f0, f1};
  ind.x = {f0, f1};
  ind.violation = violation;
  return ind;
}

TEST(ArchiveTest, AcceptsNondominated) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 3.0)));
  EXPECT_TRUE(a.offer(make(3.0, 1.0)));
  EXPECT_EQ(a.size(), 2u);
}

TEST(ArchiveTest, RejectsDominated) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 1.0)));
  EXPECT_FALSE(a.offer(make(2.0, 2.0)));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ArchiveTest, EvictsDominatedResidents) {
  Archive a;
  EXPECT_TRUE(a.offer(make(2.0, 2.0)));
  EXPECT_TRUE(a.offer(make(3.0, 1.0)));
  EXPECT_TRUE(a.offer(make(1.0, 1.0)));  // dominates both
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.solutions()[0].f, (num::Vec{1.0, 1.0}));
}

TEST(ArchiveTest, RejectsInfeasible) {
  Archive a;
  EXPECT_FALSE(a.offer(make(0.0, 0.0, /*violation=*/1.0)));
  EXPECT_TRUE(a.empty());
}

TEST(ArchiveTest, RejectsObjectiveDuplicates) {
  Archive a;
  EXPECT_TRUE(a.offer(make(1.0, 2.0)));
  EXPECT_FALSE(a.offer(make(1.0, 2.0)));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ArchiveTest, CapacityPruningKeepsExtremes) {
  Archive a(5);
  // A dense front: f1 = 10 - f0.
  for (int i = 0; i <= 20; ++i) {
    const double f0 = static_cast<double>(i) * 0.5;
    a.offer(make(f0, 10.0 - f0));
  }
  EXPECT_EQ(a.size(), 5u);
  bool has_left = false, has_right = false;
  for (const Individual& m : a.solutions()) {
    if (m.f[0] == 0.0) has_left = true;
    if (m.f[0] == 10.0) has_right = true;
  }
  EXPECT_TRUE(has_left);
  EXPECT_TRUE(has_right);
}

TEST(ArchiveTest, UnboundedGrowth) {
  Archive a(0);
  for (int i = 0; i <= 300; ++i) {
    const double f0 = static_cast<double>(i);
    a.offer(make(f0, 300.0 - f0));
  }
  EXPECT_EQ(a.size(), 301u);
}

TEST(ArchiveTest, ArchiveIsAlwaysMutuallyNondominated) {
  num::Rng rng(3);
  Archive a(50);
  for (int i = 0; i < 1000; ++i) {
    a.offer(make(rng.uniform(), rng.uniform()));
  }
  const auto sols = a.solutions();
  for (std::size_t p = 0; p < sols.size(); ++p) {
    for (std::size_t q = 0; q < sols.size(); ++q) {
      if (p != q) {
        EXPECT_FALSE(dominates(sols[p].f, sols[q].f));
      }
    }
  }
  EXPECT_LE(a.size(), 50u);
}

TEST(ArchiveTest, OfferAllFromPopulation) {
  std::vector<Individual> pop{make(1.0, 5.0), make(2.0, 2.0), make(5.0, 1.0),
                              make(3.0, 3.0)};  // last dominated by (2,2)
  Archive a;
  a.offer_all(pop);
  EXPECT_EQ(a.size(), 3u);
}

TEST(ArchiveTest, FingerprintIsContentIdentity) {
  Archive a;
  a.offer(make(1.0, 3.0));
  a.offer(make(3.0, 1.0));
  Archive b;
  b.offer(make(1.0, 3.0));
  b.offer(make(3.0, 1.0));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Members are stored in canonical order, so offering the same content in
  // reverse yields the same identity — the batch-merge contract.
  Archive reversed;
  reversed.offer(make(3.0, 1.0));
  reversed.offer(make(1.0, 3.0));
  EXPECT_EQ(a.fingerprint(), reversed.fingerprint());

  // Any single-bit change in a member changes the hash.
  Archive tweaked;
  tweaked.offer(make(1.0, 3.0));
  tweaked.offer(make(std::nextafter(3.0, 4.0), 1.0));
  EXPECT_NE(a.fingerprint(), tweaked.fingerprint());

  EXPECT_EQ(Archive().fingerprint(), Archive().fingerprint());
}

TEST(ArchiveTest, SolutionsAreCanonicallyOrdered) {
  num::Rng rng(11);
  Archive a;
  for (int i = 0; i < 200; ++i) a.offer(make(rng.uniform(), rng.uniform()));
  const auto sols = a.solutions();
  for (std::size_t i = 1; i < sols.size(); ++i) {
    EXPECT_LT(sols[i - 1].f[0], sols[i].f[0]);  // lexicographic ascending
  }
}

TEST(ArchiveTest, OfferAllIsOneTransaction) {
  // A batch member dominated by a later batch member never enters, and the
  // dominating member lands exactly once.
  std::vector<Individual> batch{make(2.0, 2.0), make(1.0, 1.0)};
  Archive a;
  a.offer_all(batch);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.solutions()[0].f, (num::Vec{1.0, 1.0}));
}

TEST(ArchiveTest, DuplicateObjectivesKeepFirstOfferedDecisionVector) {
  Individual first = make(1.0, 2.0);
  first.x = {10.0, 20.0};
  Individual second = make(1.0, 2.0);
  second.x = {30.0, 40.0};
  std::vector<Individual> batch{first, second};
  Archive a;
  a.offer_all(batch);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.solutions()[0].x, (num::Vec{10.0, 20.0}));
}

/// Random mixed workload: nondominated staircase points, dominated noise,
/// duplicates and infeasibles.
std::vector<Individual> random_batch(num::Rng& rng, std::size_t count) {
  std::vector<Individual> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = rng.uniform();
    Individual ind = make(u, (1.0 - u) * (1.0 + 0.3 * rng.uniform()));
    if (rng.bernoulli(0.05)) ind.violation = 1.0;               // infeasible
    if (!out.empty() && rng.bernoulli(0.05)) ind.f = out.back().f;  // duplicate
    out.push_back(std::move(ind));
  }
  return out;
}

TEST(ArchiveTest, BatchAndNaivePoliciesAreBitIdentical) {
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{40}}) {
    num::Rng rng(17);
    Archive batch_archive(capacity, ArchiveMerge::kBatch);
    Archive naive_archive(capacity, ArchiveMerge::kNaive);
    for (int round = 0; round < 30; ++round) {
      const auto batch = random_batch(rng, 1 + static_cast<std::size_t>(round) % 60);
      batch_archive.offer_all(batch);
      naive_archive.offer_all(batch);
      ASSERT_EQ(batch_archive.fingerprint(), naive_archive.fingerprint())
          << "capacity " << capacity << ", round " << round;
    }
    EXPECT_GT(batch_archive.size(), 0u);
    if (capacity != 0) {
      EXPECT_LE(batch_archive.size(), capacity);
    }
  }
}

TEST(ArchiveTest, UnboundedMergeIsGroupingAndOrderInvariant) {
  num::Rng rng(23);
  std::vector<Individual> all = random_batch(rng, 300);

  Archive one_shot;
  one_shot.offer_all(all);

  Archive chunked;
  for (std::size_t start = 0; start < all.size(); start += 37) {
    const std::size_t len = std::min<std::size_t>(37, all.size() - start);
    chunked.offer_all(std::span<const Individual>(all).subspan(start, len));
  }
  EXPECT_EQ(one_shot.fingerprint(), chunked.fingerprint());

  // Without duplicates the membership is order-free too (duplicates tie to
  // first-offer, so shuffle only the duplicate-free variant).
  std::vector<Individual> unique;
  for (const Individual& ind : all) {
    bool dup = false;
    for (const Individual& u : unique) {
      if (u.f == ind.f) dup = true;
    }
    if (!dup) unique.push_back(ind);
  }
  Archive forward;
  forward.offer_all(unique);
  std::reverse(unique.begin(), unique.end());
  Archive backward;
  backward.offer_all(unique);
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
}

TEST(ArchiveTest, PruneBreaksCrowdingTiesCanonically) {
  // Four evenly spaced collinear points: the two interior members carry
  // identical crowding (4/3 each), so pruning one must pick the victim by
  // the canonical rule — evict the canonically-later member — and not by
  // insertion order, which the old std::min_element scan depended on.
  const std::vector<Individual> points{make(0.0, 3.0), make(1.0, 2.0),
                                       make(2.0, 1.0), make(3.0, 0.0)};
  std::vector<Individual> reversed(points.rbegin(), points.rend());

  Archive forward(3);
  forward.offer_all(points);
  Archive backward(3);
  backward.offer_all(reversed);

  ASSERT_EQ(forward.size(), 3u);
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
  // The interior tie evicts (2, 1) — the canonically later of the two.
  EXPECT_EQ(forward.solutions()[0].f, (num::Vec{0.0, 3.0}));
  EXPECT_EQ(forward.solutions()[1].f, (num::Vec{1.0, 2.0}));
  EXPECT_EQ(forward.solutions()[2].f, (num::Vec{3.0, 0.0}));

  // The naive reference applies the same rule.
  Archive naive(3, ArchiveMerge::kNaive);
  naive.offer_all(points);
  EXPECT_EQ(naive.fingerprint(), forward.fingerprint());
}

TEST(ArchiveTest, ThreeObjectiveBatchMatchesNaive) {
  num::Rng rng(31);
  Archive batch_archive(25, ArchiveMerge::kBatch);
  Archive naive_archive(25, ArchiveMerge::kNaive);
  for (int round = 0; round < 10; ++round) {
    std::vector<Individual> pop;
    for (int i = 0; i < 50; ++i) {
      Individual ind;
      ind.f = {rng.uniform(), rng.uniform(), rng.uniform()};
      ind.x = ind.f;
      pop.push_back(std::move(ind));
    }
    batch_archive.offer_all(pop);
    naive_archive.offer_all(pop);
    ASSERT_EQ(batch_archive.fingerprint(), naive_archive.fingerprint())
        << "round " << round;
  }
}

TEST(ArchiveTest, ClearEmpties) {
  Archive a;
  a.offer(make(1.0, 1.0));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.offer(make(2.0, 2.0)));
}

TEST(ArchiveTest, StateRoundTripPreservesFingerprintThroughText) {
  Archive a;
  a.offer(make(1.0, 3.0));
  a.offer(make(3.0, 1.0));
  a.offer(make(2.0, 2.0, 0.0));
  core::Json doc = core::Json::object();
  a.save_state(doc);

  Archive b;
  b.load_state(core::Json::parse(doc.dump(2)));
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.fingerprint(), a.fingerprint());
  // The restored archive keeps behaving like the original.
  EXPECT_FALSE(b.offer(make(2.5, 2.5)));  // dominated by (2,2)
}

TEST(ArchiveTest, LoadRejectsTamperedMembers) {
  Archive a;
  a.offer(make(1.0, 3.0));
  core::Json doc = core::Json::object();
  a.save_state(doc);
  // Fingerprint/content disagreement must be detected, not trusted.
  doc.set("fingerprint", core::Json::hex(0xdeadbeefULL));
  Archive b;
  EXPECT_THROW(b.load_state(doc), StateError);
  EXPECT_TRUE(b.empty());  // a failed load leaves the archive untouched
}

}  // namespace
}  // namespace rmp::moo
