#include "moo/pmo2.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "moo/moead.hpp"
#include "moo/nsga2.hpp"
#include "moo/testproblems.hpp"
#include "moo/topology.hpp"
#include "pareto/front.hpp"
#include "pareto/mining.hpp"

namespace rmp::moo {
namespace {

TEST(TopologyTest, AllToAllEdgeCount) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kAllToAll, 4, rng);
  EXPECT_EQ(edges.size(), 12u);  // n (n-1)
}

TEST(TopologyTest, RingIsCycle) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kRing, 5, rng);
  ASSERT_EQ(edges.size(), 5u);
  for (const auto& [from, to] : edges) {
    EXPECT_EQ(to, (from + 1) % 5);
  }
}

TEST(TopologyTest, StarCentersOnHub) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kStar, 4, rng);
  EXPECT_EQ(edges.size(), 6u);  // 2 per spoke
  for (const auto& [from, to] : edges) {
    EXPECT_TRUE(from == 0 || to == 0);
  }
}

TEST(TopologyTest, RandomRespectsDegree) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kRandom, 6, rng, 2);
  EXPECT_EQ(edges.size(), 12u);
  for (const auto& [from, to] : edges) EXPECT_NE(from, to);
}

TEST(TopologyTest, SingleIslandNoEdges) {
  num::Rng rng(1);
  EXPECT_TRUE(migration_edges(TopologyKind::kAllToAll, 1, rng).empty());
  EXPECT_TRUE(migration_edges(TopologyKind::kRing, 1, rng).empty());
}

TEST(TopologyTest, EdgesArriveInCanonicalOrder) {
  // The (from, to)-sorted ordering is the fixed application order of a
  // migration epoch — the determinism contract in moo/pmo2.hpp depends on it.
  num::Rng rng(1);
  for (const auto kind : {TopologyKind::kAllToAll, TopologyKind::kRing,
                          TopologyKind::kStar, TopologyKind::kRandom}) {
    const auto edges = migration_edges(kind, 5, rng, 2);
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end())) << to_string(kind);
  }
}

TEST(Pmo2Test, PaperConfigurationRuns) {
  // The paper's adopted configuration (scaled down): two NSGA-II islands,
  // broadcast migration, probability 0.5.
  const Zdt1 problem(10);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 30;
  o.migration_interval = 10;
  o.migration_probability = 0.5;
  o.topology = TopologyKind::kAllToAll;
  o.seed = 99;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(20));
  pmo2.run();
  EXPECT_EQ(pmo2.num_islands(), 2u);
  EXPECT_GT(pmo2.archive().size(), 10u);
  // 2 islands x 20 pop x (1 init + 30 gens)
  EXPECT_EQ(pmo2.evaluations(), 2u * 20u * 31u);
}

TEST(Pmo2Test, MigrationHappensAtInterval) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 40;
  o.migration_interval = 10;
  o.migration_probability = 1.0;  // deterministic
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(12));
  pmo2.run();
  // 4 migration events x 2 edges (all-to-all between 2 islands)
  EXPECT_EQ(pmo2.migrations_performed(), 8u);
}

TEST(Pmo2Test, NoMigrationWhenProbabilityZero) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 20;
  o.migration_interval = 5;
  o.migration_probability = 0.0;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(12));
  pmo2.run();
  EXPECT_EQ(pmo2.migrations_performed(), 0u);
}

TEST(Pmo2Test, ArchiveIsNondominatedAndConverges) {
  const Zdt1 problem(12);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 80;
  o.migration_interval = 20;
  o.seed = 7;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(40));
  pmo2.run();

  double err = 0.0;
  for (const Individual& m : pmo2.archive().solutions()) {
    err += std::fabs(m.f[1] - (1.0 - std::sqrt(m.f[0])));
  }
  err /= static_cast<double>(pmo2.archive().size());
  EXPECT_LT(err, 0.1);
}

TEST(Pmo2Test, HeterogeneousIslands) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 15;
  Pmo2::AlgorithmFactory factory = [](const Problem& p, std::uint64_t seed,
                                      std::size_t island) -> std::unique_ptr<Algorithm> {
    if (island == 0) {
      Nsga2Options no;
      no.population_size = 16;
      no.seed = seed;
      return std::make_unique<Nsga2>(p, no);
    }
    MoeadOptions mo;
    mo.population_size = 16;
    mo.seed = seed;
    return std::make_unique<Moead>(p, mo);
  };
  Pmo2 pmo2(problem, o, factory);
  pmo2.run();
  EXPECT_EQ(pmo2.island(0).name(), "NSGA-II");
  EXPECT_EQ(pmo2.island(1).name(), "MOEA/D");
  EXPECT_FALSE(pmo2.archive().empty());
}

TEST(Pmo2Test, ObserverSeesEveryGeneration) {
  const Zdt1 problem(6);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 12;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  std::size_t calls = 0;
  pmo2.run([&](std::size_t gen, const Pmo2& state) {
    ++calls;
    EXPECT_EQ(gen, calls);
    EXPECT_GE(state.archive().size(), 1u);
  });
  EXPECT_EQ(calls, 12u);
}

TEST(Pmo2Test, StepwiseApiMatchesGenerationCount) {
  const Zdt1 problem(6);
  Pmo2Options o;
  o.islands = 3;
  o.topology = TopologyKind::kRing;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  pmo2.initialize();
  EXPECT_EQ(pmo2.generation(), 0u);
  pmo2.step();
  pmo2.step();
  EXPECT_EQ(pmo2.generation(), 2u);
}

TEST(Pmo2Test, DeterministicForSeed) {
  const Zdt3 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 10;
  o.seed = 123;
  Pmo2 a(problem, o, Pmo2::default_nsga2_factory(12));
  Pmo2 b(problem, o, Pmo2::default_nsga2_factory(12));
  a.run();
  b.run();
  ASSERT_EQ(a.archive().size(), b.archive().size());
}

// The batch merge engine and the naive reference are one semantics: a whole
// archipelago run — epoch merges, migration injections, capacity pruning —
// fingerprints identically under either archive policy.
TEST(Pmo2Test, ArchiveBitIdenticalAcrossMergePolicies) {
  const Zdt3 problem(10);
  auto run = [&](ArchiveMerge merge) {
    Pmo2Options o;
    o.islands = 3;
    o.generations = 15;
    o.migration_interval = 4;
    o.migration_probability = 0.5;
    o.archive_capacity = 60;  // small enough that pruning actually runs
    o.seed = 77;
    o.archive_merge = merge;
    Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(16));
    pmo2.run();
    return pmo2.archive().fingerprint();
  };
  EXPECT_EQ(run(ArchiveMerge::kBatch), run(ArchiveMerge::kNaive));
}

// The archipelago determinism contract: the archive — and everything mined
// from it — is bit-identical for any island_threads.  This extends the
// tests/core/parallel_test.cpp thread-invariance checks from one batch to
// the whole system: concurrent island tasks, epoch barriers, migration.
TEST(Pmo2Test, ArchiveBitIdenticalAcrossIslandThreads) {
  const Zdt3 problem(10);

  struct RunOutput {
    std::vector<Individual> archive;
    std::uint64_t fingerprint = 0;
    std::size_t ideal_index = 0;
    std::vector<std::size_t> shadow_indices;
  };
  auto run = [&](std::size_t island_threads) {
    Pmo2Options o;
    o.islands = 4;
    o.generations = 20;
    o.migration_interval = 5;
    o.migration_probability = 0.5;
    o.seed = 321;
    o.island_threads = island_threads;
    Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(16));
    pmo2.run();
    RunOutput out;
    out.archive.assign(pmo2.archive().solutions().begin(),
                       pmo2.archive().solutions().end());
    out.fingerprint = pmo2.archive().fingerprint();
    const auto front = pareto::Front::from_population(pmo2.archive().solutions());
    out.ideal_index = pareto::closest_to_ideal(front);
    out.shadow_indices = pareto::shadow_minima(front);
    return out;
  };

  const RunOutput reference = run(1);
  ASSERT_FALSE(reference.archive.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const RunOutput other = run(threads);
    EXPECT_EQ(other.fingerprint, reference.fingerprint) << "threads=" << threads;
    ASSERT_EQ(other.archive.size(), reference.archive.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < reference.archive.size(); ++i) {
      ASSERT_EQ(other.archive[i].x.size(), reference.archive[i].x.size());
      for (std::size_t v = 0; v < reference.archive[i].x.size(); ++v)
        EXPECT_EQ(other.archive[i].x[v], reference.archive[i].x[v]);
      ASSERT_EQ(other.archive[i].f.size(), reference.archive[i].f.size());
      for (std::size_t j = 0; j < reference.archive[i].f.size(); ++j)
        EXPECT_EQ(other.archive[i].f[j], reference.archive[i].f[j]);
    }
    // Mined candidates select identically on identical archives.
    EXPECT_EQ(other.ideal_index, reference.ideal_index);
    EXPECT_EQ(other.shadow_indices, reference.shadow_indices);
  }
}

// Minimal instrumented island: one resident whose x encodes the island
// index, a step() that does nothing, and an inject() that records where each
// immigrant came from (immigrants keep the source island's x) and absorbs it
// into the population.  Residents are mutually non-dominated across islands
// (f = (i, -i)), so every island's front is its whole population.
class RecordingAlgorithm final : public Algorithm {
 public:
  RecordingAlgorithm(std::size_t index,
                     std::vector<std::pair<std::size_t, std::size_t>>* log)
      : index_(index), log_(log) {}

  void initialize() override {
    Individual self;
    self.x = num::Vec{static_cast<double>(index_)};
    self.f = num::Vec{static_cast<double>(index_), -static_cast<double>(index_)};
    pop_.assign(1, self);
  }
  void step() override {}
  [[nodiscard]] std::span<const Individual> population() const override {
    return pop_;
  }
  void inject(std::span<const Individual> immigrants) override {
    for (const Individual& m : immigrants) {
      log_->emplace_back(static_cast<std::size_t>(m.x[0]), index_);
      pop_.push_back(m);
    }
  }
  [[nodiscard]] std::size_t evaluations() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "recording"; }

 private:
  std::size_t index_;
  std::vector<std::pair<std::size_t, std::size_t>>* log_;
  std::vector<Individual> pop_;
};

// Migration epochs apply edges in canonical (from, to) order and select
// migrants from the epoch snapshot: edge (1, 0) must export island 1's own
// candidate even though edge (0, 1) already delivered island 0's candidate
// into island 1 earlier in the same epoch.
TEST(Pmo2Test, MigrationEpochAppliesEdgesInCanonicalOrderFromSnapshot) {
  const Zdt1 problem(4);  // unused by the mock islands
  std::vector<std::pair<std::size_t, std::size_t>> log;
  Pmo2Options o;
  o.islands = 3;
  o.topology = TopologyKind::kStar;
  o.migration_interval = 1;
  o.migration_probability = 1.0;
  o.migrants_per_edge = 1;
  Pmo2 pmo2(problem, o,
            [&log](const Problem&, std::uint64_t, std::size_t island) {
              return std::make_unique<RecordingAlgorithm>(island, &log);
            });
  pmo2.initialize();
  pmo2.step();

  // Star over 3 islands enumerates (0,1),(1,0),(0,2),(2,0); the canonical
  // epoch order is (0,1),(0,2),(1,0),(2,0).  Snapshot selection means each
  // edge carries the source island's original resident (x = source index).
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 1}, {0, 2}, {1, 0}, {2, 0}};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(pmo2.migrations_performed(), 4u);
}

/// Island that throws on its second step(); used to prove the strong
/// exception guarantee on committed state.
class ThrowingAlgorithm final : public Algorithm {
 public:
  explicit ThrowingAlgorithm(std::size_t index) : index_(index) {}

  void initialize() override {
    Individual self;
    self.x = num::Vec{static_cast<double>(index_)};
    self.f = num::Vec{static_cast<double>(index_), -static_cast<double>(index_)};
    pop_.assign(1, self);
    steps_ = 0;
  }
  void step() override {
    if (index_ == 1 && ++steps_ == 2) throw std::runtime_error("island failure");
    // A successful step produces a new, strictly better point that WOULD
    // enter the archive if the epoch were (incorrectly) committed.
    pop_[0].f[0] -= 1.0;
    pop_[0].f[1] -= 1.0;
  }
  [[nodiscard]] std::span<const Individual> population() const override {
    return pop_;
  }
  void inject(std::span<const Individual>) override {}
  [[nodiscard]] std::size_t evaluations() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "throwing"; }

 private:
  std::size_t index_;
  std::size_t steps_ = 0;
  std::vector<Individual> pop_;
};

TEST(Pmo2Test, StepLeavesCommittedStateUntouchedWhenAnIslandThrows) {
  const Zdt1 problem(4);  // unused by the mock islands
  Pmo2Options o;
  o.islands = 2;
  o.migration_interval = 1;
  o.migration_probability = 1.0;
  o.island_threads = 1;  // deterministic schedule: island 0 advances first
  Pmo2 pmo2(problem, o, [](const Problem&, std::uint64_t, std::size_t island) {
    return std::make_unique<ThrowingAlgorithm>(island);
  });
  pmo2.initialize();
  pmo2.step();  // both islands step cleanly

  const std::uint64_t fingerprint = pmo2.archive().fingerprint();
  const std::size_t generation = pmo2.generation();
  const std::size_t migrations = pmo2.migrations_performed();

  // Island 0 advances (its staged population improves) before island 1
  // throws — yet nothing committed may change: no partial archive merge, no
  // generation bump, no migration bookkeeping.
  EXPECT_THROW(pmo2.step(), std::runtime_error);
  EXPECT_EQ(pmo2.archive().fingerprint(), fingerprint);
  EXPECT_EQ(pmo2.generation(), generation);
  EXPECT_EQ(pmo2.migrations_performed(), migrations);

  // initialize() restarts the run after a failure.
  pmo2.initialize();
  EXPECT_EQ(pmo2.generation(), 0u);
  EXPECT_EQ(pmo2.archive().size(), 2u);
}

// Parameterized topology sweep: every topology must complete and archive.
class Pmo2TopologyTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(Pmo2TopologyTest, RunsToCompletion) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 4;
  o.generations = 10;
  o.migration_interval = 3;
  o.topology = GetParam();
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  pmo2.run();
  EXPECT_GT(pmo2.archive().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, Pmo2TopologyTest,
                         ::testing::Values(TopologyKind::kAllToAll, TopologyKind::kRing,
                                           TopologyKind::kStar, TopologyKind::kRandom));

}  // namespace
}  // namespace rmp::moo
