#include "moo/pmo2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/moead.hpp"
#include "moo/nsga2.hpp"
#include "moo/testproblems.hpp"
#include "moo/topology.hpp"

namespace rmp::moo {
namespace {

TEST(TopologyTest, AllToAllEdgeCount) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kAllToAll, 4, rng);
  EXPECT_EQ(edges.size(), 12u);  // n (n-1)
}

TEST(TopologyTest, RingIsCycle) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kRing, 5, rng);
  ASSERT_EQ(edges.size(), 5u);
  for (const auto& [from, to] : edges) {
    EXPECT_EQ(to, (from + 1) % 5);
  }
}

TEST(TopologyTest, StarCentersOnHub) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kStar, 4, rng);
  EXPECT_EQ(edges.size(), 6u);  // 2 per spoke
  for (const auto& [from, to] : edges) {
    EXPECT_TRUE(from == 0 || to == 0);
  }
}

TEST(TopologyTest, RandomRespectsDegree) {
  num::Rng rng(1);
  const auto edges = migration_edges(TopologyKind::kRandom, 6, rng, 2);
  EXPECT_EQ(edges.size(), 12u);
  for (const auto& [from, to] : edges) EXPECT_NE(from, to);
}

TEST(TopologyTest, SingleIslandNoEdges) {
  num::Rng rng(1);
  EXPECT_TRUE(migration_edges(TopologyKind::kAllToAll, 1, rng).empty());
  EXPECT_TRUE(migration_edges(TopologyKind::kRing, 1, rng).empty());
}

TEST(Pmo2Test, PaperConfigurationRuns) {
  // The paper's adopted configuration (scaled down): two NSGA-II islands,
  // broadcast migration, probability 0.5.
  const Zdt1 problem(10);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 30;
  o.migration_interval = 10;
  o.migration_probability = 0.5;
  o.topology = TopologyKind::kAllToAll;
  o.seed = 99;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(20));
  pmo2.run();
  EXPECT_EQ(pmo2.num_islands(), 2u);
  EXPECT_GT(pmo2.archive().size(), 10u);
  // 2 islands x 20 pop x (1 init + 30 gens)
  EXPECT_EQ(pmo2.evaluations(), 2u * 20u * 31u);
}

TEST(Pmo2Test, MigrationHappensAtInterval) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 40;
  o.migration_interval = 10;
  o.migration_probability = 1.0;  // deterministic
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(12));
  pmo2.run();
  // 4 migration events x 2 edges (all-to-all between 2 islands)
  EXPECT_EQ(pmo2.migrations_performed(), 8u);
}

TEST(Pmo2Test, NoMigrationWhenProbabilityZero) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 20;
  o.migration_interval = 5;
  o.migration_probability = 0.0;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(12));
  pmo2.run();
  EXPECT_EQ(pmo2.migrations_performed(), 0u);
}

TEST(Pmo2Test, ArchiveIsNondominatedAndConverges) {
  const Zdt1 problem(12);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 80;
  o.migration_interval = 20;
  o.seed = 7;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(40));
  pmo2.run();

  double err = 0.0;
  for (const Individual& m : pmo2.archive().solutions()) {
    err += std::fabs(m.f[1] - (1.0 - std::sqrt(m.f[0])));
  }
  err /= static_cast<double>(pmo2.archive().size());
  EXPECT_LT(err, 0.1);
}

TEST(Pmo2Test, HeterogeneousIslands) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 15;
  Pmo2::AlgorithmFactory factory = [](const Problem& p, std::uint64_t seed,
                                      std::size_t island) -> std::unique_ptr<Algorithm> {
    if (island == 0) {
      Nsga2Options no;
      no.population_size = 16;
      no.seed = seed;
      return std::make_unique<Nsga2>(p, no);
    }
    MoeadOptions mo;
    mo.population_size = 16;
    mo.seed = seed;
    return std::make_unique<Moead>(p, mo);
  };
  Pmo2 pmo2(problem, o, factory);
  pmo2.run();
  EXPECT_EQ(pmo2.island(0).name(), "NSGA-II");
  EXPECT_EQ(pmo2.island(1).name(), "MOEA/D");
  EXPECT_FALSE(pmo2.archive().empty());
}

TEST(Pmo2Test, ObserverSeesEveryGeneration) {
  const Zdt1 problem(6);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 12;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  std::size_t calls = 0;
  pmo2.run([&](std::size_t gen, const Pmo2& state) {
    ++calls;
    EXPECT_EQ(gen, calls);
    EXPECT_GE(state.archive().size(), 1u);
  });
  EXPECT_EQ(calls, 12u);
}

TEST(Pmo2Test, StepwiseApiMatchesGenerationCount) {
  const Zdt1 problem(6);
  Pmo2Options o;
  o.islands = 3;
  o.topology = TopologyKind::kRing;
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  pmo2.initialize();
  EXPECT_EQ(pmo2.generation(), 0u);
  pmo2.step();
  pmo2.step();
  EXPECT_EQ(pmo2.generation(), 2u);
}

TEST(Pmo2Test, DeterministicForSeed) {
  const Zdt3 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 10;
  o.seed = 123;
  Pmo2 a(problem, o, Pmo2::default_nsga2_factory(12));
  Pmo2 b(problem, o, Pmo2::default_nsga2_factory(12));
  a.run();
  b.run();
  ASSERT_EQ(a.archive().size(), b.archive().size());
}

// Parameterized topology sweep: every topology must complete and archive.
class Pmo2TopologyTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(Pmo2TopologyTest, RunsToCompletion) {
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 4;
  o.generations = 10;
  o.migration_interval = 3;
  o.topology = GetParam();
  Pmo2 pmo2(problem, o, Pmo2::default_nsga2_factory(10));
  pmo2.run();
  EXPECT_GT(pmo2.archive().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, Pmo2TopologyTest,
                         ::testing::Values(TopologyKind::kAllToAll, TopologyKind::kRing,
                                           TopologyKind::kStar, TopologyKind::kRandom));

}  // namespace
}  // namespace rmp::moo
