#include "moo/moead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/dominance.hpp"
#include "moo/testproblems.hpp"

namespace rmp::moo {
namespace {

TEST(MoeadTest, InitializeBuildsSubproblems) {
  const Zdt1 problem(10);
  MoeadOptions o;
  o.population_size = 24;
  Moead alg(problem, o);
  alg.initialize();
  EXPECT_EQ(alg.population().size(), 24u);
  EXPECT_EQ(alg.evaluations(), 24u);
}

TEST(MoeadTest, ScalarCostUsesIdealPoint) {
  const Zdt1 problem(6);
  MoeadOptions o;
  o.population_size = 10;
  Moead alg(problem, o);
  alg.initialize();
  // Far from the ideal point, Tchebycheff cost is monotone: a vector that is
  // worse in every objective (and above the ideal) costs more.
  const num::Vec worse{60.0, 60.0};
  const num::Vec better{50.0, 50.0};
  for (std::size_t sp = 0; sp < 10; ++sp) {
    EXPECT_LE(alg.scalar_cost(better, 0.0, sp), alg.scalar_cost(worse, 0.0, sp) + 1e-12);
  }
}

TEST(MoeadTest, ViolationPenalized) {
  const Zdt1 problem(6);
  MoeadOptions o;
  o.population_size = 10;
  Moead alg(problem, o);
  alg.initialize();
  const num::Vec f{0.5, 0.5};
  EXPECT_GT(alg.scalar_cost(f, 1.0, 0), alg.scalar_cost(f, 0.0, 0));
}

TEST(MoeadTest, ImprovesZdt1) {
  const Zdt1 problem(12);
  MoeadOptions o;
  o.population_size = 60;
  o.seed = 21;
  Moead alg(problem, o);
  alg.initialize();

  auto front_error = [&]() {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i : nondominated_indices(alg.population())) {
      acc += std::fabs(alg.population()[i].f[1] -
                       (1.0 - std::sqrt(alg.population()[i].f[0])));
      ++n;
    }
    return n ? acc / static_cast<double>(n) : 1e9;
  };

  const double initial = front_error();
  for (int g = 0; g < 150; ++g) alg.step();
  EXPECT_LT(front_error(), initial / 5.0);
}

TEST(MoeadTest, WeightedSumVariantRuns) {
  const Zdt1 problem(8);
  MoeadOptions o;
  o.population_size = 20;
  o.scalarization = Scalarization::kWeightedSum;
  Moead alg(problem, o);
  alg.run(20);
  for (const Individual& ind : alg.population()) {
    EXPECT_TRUE(num::all_finite(ind.f));
  }
}

TEST(MoeadTest, ThreeObjectiveWeightLattice) {
  const Dtlz2 problem(10, 3);
  MoeadOptions o;
  o.population_size = 36;
  Moead alg(problem, o);
  alg.run(30);
  EXPECT_EQ(alg.population().size(), 36u);
  // DTLZ2 optimum satisfies sum f_i^2 = 1; population should approach it.
  double mean_norm = 0.0;
  for (const Individual& ind : alg.population()) {
    mean_norm += num::norm2(ind.f);
  }
  mean_norm /= static_cast<double>(alg.population().size());
  EXPECT_LT(mean_norm, 1.6);
  EXPECT_GT(mean_norm, 0.9);
}

TEST(MoeadTest, DeterministicForSeed) {
  const Zdt3 problem(8);
  MoeadOptions o;
  o.population_size = 16;
  o.seed = 5;
  Moead a(problem, o), b(problem, o);
  a.run(8);
  b.run(8);
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_EQ(a.population()[i].x, b.population()[i].x);
  }
}

TEST(MoeadTest, InjectAcceptsImprovingImmigrant) {
  const Zdt1 problem(6);
  MoeadOptions o;
  o.population_size = 10;
  o.seed = 8;
  Moead alg(problem, o);
  alg.initialize();

  Individual imm;
  imm.x.assign(6, 0.0);
  imm.f.assign(2, 0.0);
  imm.violation = problem.evaluate(imm.x, imm.f);

  // The global optimum improves every subproblem; inject several copies so
  // at least one random slot accepts it.
  std::vector<Individual> immigrants(10, imm);
  alg.inject(immigrants);
  bool found = false;
  for (const Individual& ind : alg.population()) {
    if (ind.x == imm.x) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rmp::moo
