#include "moo/dominance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "numeric/rng.hpp"

namespace rmp::moo {
namespace {

Individual make(std::initializer_list<double> f, double violation = 0.0) {
  Individual ind;
  ind.f.assign(f);
  ind.violation = violation;
  return ind;
}

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(dominates(std::vector<double>{1.0, 1.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_TRUE(dominates(std::vector<double>{1.0, 2.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(dominates(std::vector<double>{1.0, 3.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(dominates(std::vector<double>{2.0, 2.0}, std::vector<double>{1.0, 1.0}));
}

TEST(DominanceTest, EqualVectorsDoNotDominate) {
  const std::vector<double> f{1.0, 2.0};
  EXPECT_FALSE(dominates(f, f));
}

TEST(DominanceTest, AntisymmetryProperty) {
  num::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a{rng.uniform(), rng.uniform(), rng.uniform()};
    std::vector<double> b{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_FALSE(dominates(a, b) && dominates(b, a));
  }
}

TEST(ConstrainedDominanceTest, FeasibleBeatsInfeasible) {
  const Individual good = make({100.0, 100.0}, 0.0);
  const Individual bad = make({0.0, 0.0}, 1.0);
  EXPECT_TRUE(constrained_dominates(good, bad));
  EXPECT_FALSE(constrained_dominates(bad, good));
}

TEST(ConstrainedDominanceTest, LessViolationWins) {
  const Individual less = make({5.0, 5.0}, 0.1);
  const Individual more = make({0.0, 0.0}, 0.5);
  EXPECT_TRUE(constrained_dominates(less, more));
  EXPECT_FALSE(constrained_dominates(more, less));
}

TEST(ConstrainedDominanceTest, BothFeasibleUsesPareto) {
  const Individual a = make({1.0, 1.0});
  const Individual b = make({2.0, 2.0});
  EXPECT_TRUE(constrained_dominates(a, b));
  EXPECT_FALSE(constrained_dominates(b, a));
}

TEST(SortTest, TwoFrontStructure) {
  std::vector<Individual> pop{make({1.0, 4.0}), make({2.0, 3.0}), make({4.0, 1.0}),
                              make({3.0, 5.0}), make({5.0, 4.0})};
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_GE(fronts.size(), 2u);
  EXPECT_EQ(fronts[0].size(), 3u);
  EXPECT_EQ(pop[0].rank, 0u);
  EXPECT_EQ(pop[1].rank, 0u);
  EXPECT_EQ(pop[2].rank, 0u);
  EXPECT_EQ(pop[3].rank, 1u);
  EXPECT_EQ(pop[4].rank, 1u);
}

TEST(SortTest, AllEqualObjectivesSingleFront) {
  std::vector<Individual> pop{make({1.0, 1.0}), make({1.0, 1.0}), make({1.0, 1.0})};
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 3u);
}

TEST(SortTest, ChainGivesOneFrontPerIndividual) {
  std::vector<Individual> pop{make({1.0, 1.0}), make({2.0, 2.0}), make({3.0, 3.0})};
  const auto fronts = fast_nondominated_sort(pop);
  ASSERT_EQ(fronts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(pop[i].rank, i);
}

TEST(SortTest, FrontsPartitionThePopulation) {
  num::Rng rng(42);
  std::vector<Individual> pop;
  for (int i = 0; i < 60; ++i) {
    pop.push_back(make({rng.uniform(), rng.uniform()}));
  }
  const auto fronts = fast_nondominated_sort(pop);
  std::size_t total = 0;
  for (const auto& f : fronts) total += f.size();
  EXPECT_EQ(total, pop.size());
  // Within a front nobody dominates anybody.
  for (const auto& front : fronts) {
    for (std::size_t a : front) {
      for (std::size_t b : front) {
        if (a != b) {
          EXPECT_FALSE(constrained_dominates(pop[a], pop[b]));
        }
      }
    }
  }
  // Every member of front k+1 is dominated by someone in front k.
  for (std::size_t k = 0; k + 1 < fronts.size(); ++k) {
    for (std::size_t b : fronts[k + 1]) {
      bool dominated = false;
      for (std::size_t a : fronts[k]) {
        if (constrained_dominates(pop[a], pop[b])) dominated = true;
      }
      EXPECT_TRUE(dominated);
    }
  }
}

TEST(CrowdingTest, BoundaryGetsInfinity) {
  std::vector<Individual> pop{make({1.0, 4.0}), make({2.0, 3.0}), make({3.0, 2.0}),
                              make({4.0, 1.0})};
  const std::vector<std::size_t> front{0, 1, 2, 3};
  assign_crowding_distance(pop, front);
  EXPECT_EQ(pop[0].crowding, kInfiniteCrowding);
  EXPECT_EQ(pop[3].crowding, kInfiniteCrowding);
  EXPECT_TRUE(std::isfinite(pop[1].crowding));
  EXPECT_TRUE(std::isfinite(pop[2].crowding));
}

TEST(CrowdingTest, DenserRegionLowerCrowding) {
  std::vector<Individual> pop{make({0.0, 10.0}), make({4.9, 5.1}), make({5.0, 5.0}),
                              make({5.1, 4.9}), make({10.0, 0.0})};
  const std::vector<std::size_t> front{0, 1, 2, 3, 4};
  assign_crowding_distance(pop, front);
  EXPECT_LT(pop[2].crowding, pop[1].crowding + 1e-12);
  EXPECT_LT(pop[2].crowding, pop[3].crowding + 1e-12);
}

TEST(CrowdingTest, TinyFrontAllInfinite) {
  std::vector<Individual> pop{make({1.0, 2.0}), make({2.0, 1.0})};
  const std::vector<std::size_t> front{0, 1};
  assign_crowding_distance(pop, front);
  EXPECT_EQ(pop[0].crowding, kInfiniteCrowding);
  EXPECT_EQ(pop[1].crowding, kInfiniteCrowding);
}

TEST(CrowdedLessTest, RankBeforeCrowding) {
  Individual a = make({1.0, 1.0});
  a.rank = 0;
  a.crowding = 0.1;
  Individual b = make({2.0, 2.0});
  b.rank = 1;
  b.crowding = 100.0;
  EXPECT_TRUE(crowded_less(a, b));
  EXPECT_FALSE(crowded_less(b, a));
}

TEST(NondominatedIndicesTest, FiltersDominatedAndInfeasible) {
  std::vector<Individual> pop{make({1.0, 4.0}), make({2.0, 5.0}),       // dominated
                              make({4.0, 1.0}), make({0.0, 0.0}, 2.0)};  // infeasible
  const auto idx = nondominated_indices(pop);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 2}));
}

TEST(NondominatedIndicesTest, InfeasibleOnlyPopulation) {
  std::vector<Individual> pop{make({0.0, 0.0}, 3.0), make({1.0, 1.0}, 1.0),
                              make({2.0, 2.0}, 2.0)};
  const auto idx = nondominated_indices(pop);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1}));
}

/// A hostile random population for the two-objective sweep: clustered values
/// force exact coordinate ties, plus exact duplicates and infeasibles.
std::vector<Individual> random_two_objective_pop(num::Rng& rng, std::size_t n) {
  std::vector<Individual> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Quantized coordinates: ~8 distinct values per axis, so equal-f0 and
    // equal-f1 ties are common.
    const double f0 = std::floor(rng.uniform() * 8.0);
    const double f1 = std::floor(rng.uniform() * 8.0);
    Individual ind = make({f0, f1});
    if (rng.bernoulli(0.1)) ind.violation = std::floor(rng.uniform() * 3.0) + 1.0;
    if (!pop.empty() && rng.bernoulli(0.1)) {
      ind.f = pop.back().f;  // exact duplicate fitness
      ind.violation = pop.back().violation;
    }
    pop.push_back(std::move(ind));
  }
  return pop;
}

TEST(SortTest, TwoObjectiveSweepMatchesPairwiseReference) {
  num::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Individual> pop =
        random_two_objective_pop(rng, 1 + static_cast<std::size_t>(trial) * 3);
    std::vector<Individual> copy = pop;

    const auto sweep = fast_nondominated_sort(pop);           // O(N log N) path
    const auto reference = fast_nondominated_sort_pairwise(copy);  // O(N^2) path

    ASSERT_EQ(sweep, reference) << "trial " << trial;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      EXPECT_EQ(pop[i].rank, copy[i].rank) << "trial " << trial << ", index " << i;
    }
  }
}

TEST(SortTest, FrontsAreAscendingIndexOrder) {
  num::Rng rng(5);
  std::vector<Individual> two = random_two_objective_pop(rng, 80);
  for (const auto& front : fast_nondominated_sort(two)) {
    EXPECT_TRUE(std::is_sorted(front.begin(), front.end()));
  }
  std::vector<Individual> three;
  for (int i = 0; i < 60; ++i) {
    three.push_back(make({rng.uniform(), rng.uniform(), rng.uniform()}));
  }
  for (const auto& front : fast_nondominated_sort(three)) {
    EXPECT_TRUE(std::is_sorted(front.begin(), front.end()));
  }
}

TEST(NondominatedIndicesTest, TwoObjectiveSweepMatchesPairwiseScan) {
  num::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<Individual> pop =
        random_two_objective_pop(rng, 1 + static_cast<std::size_t>(trial) * 3);
    const auto fast = nondominated_indices(pop);
    // Reference: direct O(N^2) definition.
    std::vector<std::size_t> slow;
    for (std::size_t p = 0; p < pop.size(); ++p) {
      bool dominated = false;
      for (std::size_t q = 0; q < pop.size() && !dominated; ++q) {
        if (q != p && constrained_dominates(pop[q], pop[p])) dominated = true;
      }
      if (!dominated) slow.push_back(p);
    }
    ASSERT_EQ(fast, slow) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rmp::moo
