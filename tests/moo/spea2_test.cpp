#include "moo/spea2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/dominance.hpp"
#include "moo/nsga2.hpp"
#include "moo/pmo2.hpp"
#include "moo/testproblems.hpp"

namespace rmp::moo {
namespace {

TEST(Spea2Test, InitializeFillsArchive) {
  const Zdt1 problem(8);
  Spea2Options o;
  o.population_size = 20;
  o.archive_size = 20;
  Spea2 alg(problem, o);
  alg.initialize();
  EXPECT_EQ(alg.population().size(), 20u);
  EXPECT_EQ(alg.evaluations(), 20u);
}

TEST(Spea2Test, ArchiveBoundedAfterSteps) {
  const Zdt1 problem(8);
  Spea2Options o;
  o.population_size = 20;
  o.archive_size = 16;
  Spea2 alg(problem, o);
  alg.run(10);
  EXPECT_LE(alg.population().size(), 16u);
  EXPECT_EQ(alg.evaluations(), 20u + 10u * 20u);
}

TEST(Spea2Test, ConvergesOnZdt1) {
  const Zdt1 problem(12);
  Spea2Options o;
  o.population_size = 40;
  o.archive_size = 40;
  o.seed = 3;
  Spea2 alg(problem, o);
  alg.initialize();
  auto error = [&]() {
    double acc = 0.0;
    for (const Individual& m : alg.population()) {
      acc += std::fabs(m.f[1] - (1.0 - std::sqrt(m.f[0])));
    }
    return acc / static_cast<double>(alg.population().size());
  };
  const double initial = error();
  for (int g = 0; g < 100; ++g) alg.step();
  EXPECT_LT(error(), initial / 5.0);
}

TEST(Spea2Test, TruncationPreservesSpread) {
  const Zdt1 problem(8);
  Spea2Options o;
  o.population_size = 40;
  o.archive_size = 10;
  o.seed = 4;
  Spea2 alg(problem, o);
  alg.run(40);
  // The archive should span a nontrivial range of f0.
  double min_f0 = 1e18, max_f0 = -1e18;
  for (const Individual& m : alg.population()) {
    min_f0 = std::min(min_f0, m.f[0]);
    max_f0 = std::max(max_f0, m.f[0]);
  }
  EXPECT_GT(max_f0 - min_f0, 0.3);
}

TEST(Spea2Test, DeterministicForSeed) {
  const Zdt3 problem(8);
  Spea2Options o;
  o.population_size = 16;
  o.archive_size = 16;
  o.seed = 9;
  Spea2 a(problem, o), b(problem, o);
  a.run(6);
  b.run(6);
  ASSERT_EQ(a.population().size(), b.population().size());
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_EQ(a.population()[i].x, b.population()[i].x);
  }
}

TEST(Spea2Test, WorksAsIslandEngine) {
  // Heterogeneous archipelago: NSGA-II + SPEA2.
  const Zdt1 problem(8);
  Pmo2Options o;
  o.islands = 2;
  o.generations = 12;
  o.migration_interval = 4;
  Pmo2::AlgorithmFactory factory = [](const Problem& p, std::uint64_t seed,
                                      std::size_t island) -> std::unique_ptr<Algorithm> {
    if (island == 0) {
      Spea2Options so;
      so.population_size = 16;
      so.archive_size = 16;
      so.seed = seed;
      return std::make_unique<Spea2>(p, so);
    }
    Nsga2Options no;
    no.population_size = 16;
    no.seed = seed;
    return std::make_unique<Nsga2>(p, no);
  };
  Pmo2 pmo2(problem, o, factory);
  pmo2.run();
  EXPECT_EQ(pmo2.island(0).name(), "SPEA2");
  EXPECT_GT(pmo2.archive().size(), 5u);
}

TEST(Spea2Test, HandlesConstrainedProblem) {
  const BinhKorn problem;
  Spea2Options o;
  o.population_size = 30;
  o.archive_size = 30;
  o.seed = 6;
  Spea2 alg(problem, o);
  alg.run(40);
  std::size_t feasible = 0;
  for (const Individual& m : alg.population()) feasible += m.feasible();
  EXPECT_GT(feasible, alg.population().size() / 2);
}

}  // namespace
}  // namespace rmp::moo
