// Property tests for the epoch-committed evaluation cache: bitwise key
// semantics, mid-epoch snapshot purity, arrival-order-independent commits,
// deterministic capacity eviction, zero-capacity no-op — plus the
// CachedProblem decorator's hit/miss, deferred-commit and stats behaviour.
#include "moo/evalcache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>

#include "core/json.hpp"
#include "core/parallel.hpp"
#include "moo/cached_problem.hpp"
#include "moo/state.hpp"

namespace rmp::moo {
namespace {

num::Vec key(std::initializer_list<double> v) { return num::Vec(v); }

/// Stages (x, f=x*2, violation=0) — payload derived from the key so lookups
/// can verify they got the right entry back.
void stage_derived(EvalCache& cache, const num::Vec& x) {
  num::Vec f(x);
  for (double& v : f) v *= 2.0;
  cache.stage(x, f, 0.0);
}

/// Lookup helper returning hit/miss; on hit checks the derived payload.
bool probe(const EvalCache& cache, const num::Vec& x) {
  num::Vec f(x.size(), -1.0);
  double violation = -1.0;
  if (!cache.lookup(x, f, violation)) return false;
  EXPECT_EQ(violation, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(f[i], 2.0 * x[i]);
  return true;
}

TEST(EvalCacheTest, BitwiseKeySemantics) {
  EvalCache cache(16);
  const num::Vec x = key({1.0, 2.0, 3.0});
  stage_derived(cache, x);
  cache.commit();
  EXPECT_TRUE(probe(cache, x));

  // One ULP off in any coordinate is a different key.
  for (std::size_t i = 0; i < x.size(); ++i) {
    num::Vec up(x), down(x);
    up[i] = std::nextafter(x[i], 1e300);
    down[i] = std::nextafter(x[i], -1e300);
    EXPECT_FALSE(probe(cache, up)) << i;
    EXPECT_FALSE(probe(cache, down)) << i;
  }

  // -0.0 and +0.0 compare equal numerically but are distinct bit patterns,
  // hence distinct keys.
  const num::Vec zero = key({0.0});
  const num::Vec negzero = key({-0.0});
  ASSERT_TRUE(zero[0] == negzero[0]);
  EvalCache signs(16);
  stage_derived(signs, zero);
  signs.commit();
  EXPECT_TRUE(probe(signs, zero));
  EXPECT_FALSE(probe(signs, negzero));
}

TEST(EvalCacheTest, BitwiseHelpers) {
  const num::Vec a = key({1.0, 2.0});
  const num::Vec b = key({1.0, std::nextafter(2.0, 3.0)});
  EXPECT_TRUE(bitwise_equal(a, a));
  EXPECT_FALSE(bitwise_equal(a, b));
  EXPECT_FALSE(bitwise_equal(a, key({1.0})));
  EXPECT_FALSE(bitwise_equal(key({0.0}), key({-0.0})));
  // bitwise_less is a strict total order on distinct patterns.
  EXPECT_TRUE(bitwise_less(a, b) != bitwise_less(b, a));
  EXPECT_FALSE(bitwise_less(a, a));
  EXPECT_TRUE(bitwise_less(key({1.0}), a));  // shorter prefix orders first
}

TEST(EvalCacheTest, MidEpochSnapshotPurity) {
  EvalCache cache(16);
  const num::Vec x = key({4.0, 5.0});
  stage_derived(cache, x);
  // Staged but uncommitted: invisible, including to later stages of the
  // same epoch.
  EXPECT_FALSE(probe(cache, x));
  EXPECT_EQ(cache.snapshot_size(), 0u);
  EXPECT_EQ(cache.pending_size(), 1u);
  cache.commit();
  EXPECT_TRUE(probe(cache, x));
  EXPECT_EQ(cache.snapshot_size(), 1u);
  EXPECT_EQ(cache.pending_size(), 0u);
}

TEST(EvalCacheTest, ArrivalOrderIndependentCommits) {
  // Stage the same SET of entries in shuffled orders (with duplicates) into
  // caches small enough to force eviction; every cache must end up with the
  // identical visible set.
  std::vector<num::Vec> keys;
  for (int i = 0; i < 7; ++i) {
    keys.push_back(key({static_cast<double>(i), 1.0 / (i + 1)}));
  }
  std::mt19937 shuffler(17);
  std::vector<std::vector<bool>> visible;
  for (int order = 0; order < 5; ++order) {
    EvalCache cache(4);
    std::vector<std::size_t> idx = {0, 1, 2, 3, 4, 5, 6, 2, 5};  // dups
    std::shuffle(idx.begin(), idx.end(), shuffler);
    for (std::size_t i : idx) stage_derived(cache, keys[i]);
    cache.commit();
    EXPECT_EQ(cache.snapshot_size(), 4u);
    std::vector<bool> hits;
    hits.reserve(keys.size());
    for (const num::Vec& k : keys) hits.push_back(probe(cache, k));
    visible.push_back(std::move(hits));
  }
  for (std::size_t i = 1; i < visible.size(); ++i) {
    EXPECT_EQ(visible[i], visible[0]) << "order " << i;
  }
}

TEST(EvalCacheTest, CapacityEvictionIsFifoWithRefresh) {
  EvalCache cache(2);
  const num::Vec a = key({1.0}), b = key({2.0}), c = key({3.0});
  stage_derived(cache, a);
  cache.commit();
  stage_derived(cache, b);
  cache.commit();
  EXPECT_TRUE(probe(cache, a));
  EXPECT_TRUE(probe(cache, b));

  // Re-committing `a` refreshes its age, so the third key evicts `b`.
  stage_derived(cache, a);
  cache.commit();
  stage_derived(cache, c);
  cache.commit();
  EXPECT_TRUE(probe(cache, a));
  EXPECT_FALSE(probe(cache, b));
  EXPECT_TRUE(probe(cache, c));
  EXPECT_EQ(cache.stats().evicted, 1u);
}

TEST(EvalCacheTest, DuplicateStagesDeduplicate) {
  EvalCache cache(16);
  const num::Vec x = key({9.0});
  stage_derived(cache, x);
  stage_derived(cache, x);
  stage_derived(cache, x);
  cache.commit();
  EXPECT_EQ(cache.snapshot_size(), 1u);
  EXPECT_EQ(cache.stats().committed, 1u);
}

TEST(EvalCacheTest, ZeroCapacityIsANoOp) {
  EvalCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const num::Vec x = key({1.0});
  stage_derived(cache, x);
  EXPECT_EQ(cache.pending_size(), 0u);
  cache.commit();
  EXPECT_EQ(cache.snapshot_size(), 0u);
  EXPECT_FALSE(probe(cache, x));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
}

TEST(EvalCacheTest, ClearResetsEverything) {
  EvalCache cache(8);
  stage_derived(cache, key({1.0}));
  cache.commit();
  EXPECT_TRUE(probe(cache, key({1.0})));
  cache.clear();
  EXPECT_EQ(cache.snapshot_size(), 0u);
  EXPECT_FALSE(probe(cache, key({1.0})));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.committed, 0u);
}

// ---------------------------------------------------------------------------
// CachedProblem decorator
// ---------------------------------------------------------------------------

/// One-variable problem counting its evaluate() calls; x < 0 is infeasible.
class CountingProblem final : public Problem {
 public:
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::span<const double> lower_bounds() const override { return lo_; }
  std::span<const double> upper_bounds() const override { return hi_; }
  double evaluate(std::span<const double> x,
                  std::span<double> f) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    f[0] = x[0] * x[0];
    f[1] = 1.0 - x[0];
    return x[0] < 0.0 ? -x[0] : 0.0;
  }
  mutable std::atomic<std::size_t> calls{0};

 private:
  num::Vec lo_{-1.0}, hi_{1.0};
};

TEST(CachedProblemTest, HitsSkipTheInnerProblemOutsideRegions) {
  auto inner = std::make_shared<CountingProblem>();
  CachedProblem cached(inner, 64);
  const num::Vec x = key({0.5});
  num::Vec f(2);
  // Outside any deterministic region the miss commits immediately, so the
  // second call is a hit.
  EXPECT_EQ(cached.evaluate(x, f), 0.0);
  EXPECT_EQ(inner->calls.load(), 1u);
  num::Vec f2(2, -1.0);
  EXPECT_EQ(cached.evaluate(x, f2), 0.0);
  EXPECT_EQ(inner->calls.load(), 1u);
  EXPECT_EQ(f2[0], f[0]);
  EXPECT_EQ(f2[1], f[1]);

  const EvalStats s = cached.eval_stats();
  EXPECT_EQ(s.evaluations, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.full_evaluations, 1u);
}

TEST(CachedProblemTest, InfeasibleResultsAreNotCached) {
  auto inner = std::make_shared<CountingProblem>();
  CachedProblem cached(inner, 64);
  const num::Vec x = key({-0.25});
  num::Vec f(2);
  EXPECT_GT(cached.evaluate(x, f), 0.0);
  EXPECT_GT(cached.evaluate(x, f), 0.0);
  EXPECT_EQ(inner->calls.load(), 2u);  // repeat re-ran: no memoized entry
  EXPECT_EQ(cached.eval_stats().cache_hits, 0u);
}

/// A feasible problem that vetoes memoization of every result — modelling
/// evaluations that are feasible yet not bitwise-repeatable (the kinetic
/// problem's limit-cycle averages).
class VetoProblem final : public Problem {
 public:
  std::size_t num_variables() const override { return 1; }
  std::size_t num_objectives() const override { return 2; }
  std::span<const double> lower_bounds() const override { return lo_; }
  std::span<const double> upper_bounds() const override { return hi_; }
  double evaluate(std::span<const double> x,
                  std::span<double> f) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    f[0] = x[0];
    f[1] = -x[0];
    return 0.0;  // feasible — only the veto below blocks memoization
  }
  bool last_result_memoizable() const override { return false; }
  mutable std::atomic<std::size_t> calls{0};

 private:
  num::Vec lo_{-1.0}, hi_{1.0};
};

TEST(CachedProblemTest, VetoedResultsAreNotCached) {
  auto inner = std::make_shared<VetoProblem>();
  CachedProblem cached(inner, 64);
  const num::Vec x = key({0.5});
  num::Vec f(2);
  EXPECT_EQ(cached.evaluate(x, f), 0.0);
  EXPECT_EQ(cached.evaluate(x, f), 0.0);
  // Feasible but vetoed: the repeat re-ran the inner problem, exactly as an
  // uncached run would have re-run it.
  EXPECT_EQ(inner->calls.load(), 2u);
  EXPECT_EQ(cached.eval_stats().cache_hits, 0u);
  // The decorator forwards the veto for stacked caches.
  EXPECT_FALSE(cached.last_result_memoizable());
}

TEST(CachedProblemTest, CommitsDeferInsideDeterministicRegions) {
  auto inner = std::make_shared<CountingProblem>();
  CachedProblem cached(inner, 64);
  const num::Vec x = key({0.25});
  // Inside a region (even the serial n_threads=1 path) misses stay staged:
  // repeats within the batch re-evaluate, and commit_epoch() defers.
  core::parallel_for(3, 1, [&](std::size_t) {
    num::Vec f(2);
    EXPECT_EQ(cached.evaluate(x, f), 0.0);
    cached.commit_epoch();  // must be a no-op here
  });
  EXPECT_EQ(inner->calls.load(), 3u);
  EXPECT_EQ(cached.cache().snapshot_size(), 0u);
  // The serial barrier commits; the next epoch hits.
  cached.commit_epoch();
  EXPECT_EQ(cached.cache().snapshot_size(), 1u);
  num::Vec f(2);
  EXPECT_EQ(cached.evaluate(x, f), 0.0);
  EXPECT_EQ(inner->calls.load(), 3u);
}

TEST(CachedProblemTest, BatchResultsAreThreadCountInvariant) {
  // Same duplicated batch at widths 1 and 4: identical objectives and
  // identical hit/miss totals.
  std::vector<EvalStats> stats;
  std::vector<std::vector<double>> objectives;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto inner = std::make_shared<CountingProblem>();
    CachedProblem cached(inner, 64);
    std::vector<moo::Individual> batch(12);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].x = key({static_cast<double>(i % 4) / 8.0});  // 4 distinct keys
    }
    std::vector<double> f0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      core::evaluate_batch(cached, batch, threads);
      cached.commit_epoch();
      for (const auto& ind : batch) f0.push_back(ind.f[0]);
    }
    stats.push_back(cached.eval_stats());
    objectives.push_back(std::move(f0));
  }
  EXPECT_EQ(objectives[0], objectives[1]);
  EXPECT_EQ(stats[0].evaluations, stats[1].evaluations);
  EXPECT_EQ(stats[0].cache_hits, stats[1].cache_hits);
  EXPECT_EQ(stats[0].full_evaluations, stats[1].full_evaluations);
  // Epochs 2 and 3 are answered entirely from the snapshot: 12 + 12 hits,
  // plus the first epoch's 8 in-batch repeats missing (purity) = 24 hits.
  EXPECT_EQ(stats[0].cache_hits, 24u);
  EXPECT_EQ(stats[0].full_evaluations, 12u);
}

TEST(CachedProblemTest, ForwardsProblemSurface) {
  auto inner = std::make_shared<CountingProblem>();
  CachedProblem cached(inner, 4);
  EXPECT_EQ(cached.num_variables(), 1u);
  EXPECT_EQ(cached.num_objectives(), 2u);
  EXPECT_EQ(cached.lower_bounds()[0], -1.0);
  EXPECT_EQ(cached.upper_bounds()[0], 1.0);
  EXPECT_FALSE(cached.set_prescreen(true));  // inner has none
}

TEST(EvalCacheTest, StateRoundTripKeepsEntriesCountersAndEvictionOrder) {
  EvalCache a(2);
  stage_derived(a, key({1.0}));
  stage_derived(a, key({2.0}));
  a.commit();
  EXPECT_TRUE(probe(a, key({1.0})));   // a hit
  EXPECT_FALSE(probe(a, key({9.0})));  // a miss

  core::Json doc = core::Json::object();
  a.save_state(doc);
  EvalCache b(2);
  b.load_state(core::Json::parse(doc.dump(2)));

  EXPECT_TRUE(probe(b, key({1.0})));
  EXPECT_TRUE(probe(b, key({2.0})));
  EXPECT_FALSE(probe(b, key({9.0})));
  // Eviction order survived: a third entry pushes out the OLDEST ({1.0}),
  // exactly as it would have in the original cache.
  stage_derived(b, key({3.0}));
  b.commit();
  EXPECT_FALSE(probe(b, key({1.0})));
  EXPECT_TRUE(probe(b, key({2.0})));
  EXPECT_TRUE(probe(b, key({3.0})));
}

TEST(EvalCacheTest, SaveStateIsEpochBarrierOnly) {
  EvalCache cache(4);
  stage_derived(cache, key({1.0}));  // staged, not committed
  core::Json doc = core::Json::object();
  EXPECT_THROW(cache.save_state(doc), StateError);
  cache.commit();
  EXPECT_NO_THROW(cache.save_state(doc));
}

TEST(EvalCacheTest, LoadRejectsMoreEntriesThanCapacity) {
  EvalCache big(8);
  stage_derived(big, key({1.0}));
  stage_derived(big, key({2.0}));
  big.commit();
  core::Json doc = core::Json::object();
  big.save_state(doc);
  EvalCache small(1);
  EXPECT_THROW(small.load_state(doc), StateError);
}

}  // namespace
}  // namespace rmp::moo
