#include "moo/operators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/dominance.hpp"
#include "numeric/stats.hpp"

namespace rmp::moo {
namespace {

TEST(SbxTest, ChildrenWithinBounds) {
  num::Rng rng(1);
  const num::Vec p1{0.1, 0.9, 0.5};
  const num::Vec p2{0.8, 0.2, 0.5};
  const num::Vec lo(3, 0.0);
  const num::Vec hi(3, 1.0);
  num::Vec c1, c2;
  for (int trial = 0; trial < 500; ++trial) {
    sbx_crossover(p1, p2, lo, hi, 1.0, 15.0, rng, c1, c2);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(c1[i], 0.0);
      EXPECT_LE(c1[i], 1.0);
      EXPECT_GE(c2[i], 0.0);
      EXPECT_LE(c2[i], 1.0);
    }
  }
}

TEST(SbxTest, ZeroProbabilityCopiesParents) {
  num::Rng rng(2);
  const num::Vec p1{0.3, 0.7};
  const num::Vec p2{0.6, 0.1};
  const num::Vec lo(2, 0.0), hi(2, 1.0);
  num::Vec c1, c2;
  sbx_crossover(p1, p2, lo, hi, 0.0, 15.0, rng, c1, c2);
  EXPECT_EQ(c1, p1);
  EXPECT_EQ(c2, p2);
}

TEST(SbxTest, IdenticalParentsUnchanged) {
  num::Rng rng(3);
  const num::Vec p{0.4, 0.4};
  const num::Vec lo(2, 0.0), hi(2, 1.0);
  num::Vec c1, c2;
  for (int i = 0; i < 100; ++i) {
    sbx_crossover(p, p, lo, hi, 1.0, 15.0, rng, c1, c2);
    EXPECT_EQ(c1, p);
    EXPECT_EQ(c2, p);
  }
}

TEST(SbxTest, MeanOfChildrenNearParentMean) {
  // SBX is mean-preserving per variable (when no clamping occurs).
  num::Rng rng(4);
  const num::Vec p1{0.45};
  const num::Vec p2{0.55};
  const num::Vec lo(1, 0.0), hi(1, 1.0);
  num::Vec c1, c2;
  std::vector<double> means;
  for (int i = 0; i < 4000; ++i) {
    sbx_crossover(p1, p2, lo, hi, 1.0, 15.0, rng, c1, c2);
    means.push_back(0.5 * (c1[0] + c2[0]));
  }
  EXPECT_NEAR(num::mean(means), 0.5, 0.005);
}

TEST(SbxTest, HigherEtaStaysCloserToParents) {
  num::Rng rng_a(5), rng_b(5);
  const num::Vec p1{0.3};
  const num::Vec p2{0.7};
  const num::Vec lo(1, 0.0), hi(1, 1.0);
  num::Vec c1, c2;
  double spread_low_eta = 0.0, spread_high_eta = 0.0;
  for (int i = 0; i < 3000; ++i) {
    sbx_crossover(p1, p2, lo, hi, 1.0, 2.0, rng_a, c1, c2);
    spread_low_eta += std::fabs(c1[0] - 0.3) + std::fabs(c2[0] - 0.7);
    sbx_crossover(p1, p2, lo, hi, 1.0, 30.0, rng_b, c1, c2);
    spread_high_eta += std::fabs(c1[0] - 0.3) + std::fabs(c2[0] - 0.7);
  }
  EXPECT_LT(spread_high_eta, spread_low_eta);
}

TEST(MutationTest, StaysInBounds) {
  num::Rng rng(6);
  const num::Vec lo{-1.0, 0.0};
  const num::Vec hi{1.0, 10.0};
  for (int trial = 0; trial < 1000; ++trial) {
    num::Vec x{0.5, 5.0};
    polynomial_mutation(x, lo, hi, 1.0, 20.0, rng);
    EXPECT_GE(x[0], -1.0);
    EXPECT_LE(x[0], 1.0);
    EXPECT_GE(x[1], 0.0);
    EXPECT_LE(x[1], 10.0);
  }
}

TEST(MutationTest, ZeroProbabilityNoChange) {
  num::Rng rng(7);
  num::Vec x{0.25, 0.75};
  const num::Vec orig = x;
  const num::Vec lo(2, 0.0), hi(2, 1.0);
  polynomial_mutation(x, lo, hi, 0.0, 20.0, rng);
  EXPECT_EQ(x, orig);
}

TEST(MutationTest, DefaultRateIsOneOverN) {
  // With p = 1/n, on average one variable changes per call.
  num::Rng rng(8);
  const std::size_t n = 20;
  const num::Vec lo(n, 0.0), hi(n, 1.0);
  double changed = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    num::Vec x(n, 0.5);
    polynomial_mutation(x, lo, hi, -1.0, 20.0, rng);
    for (double v : x) changed += v != 0.5;
  }
  EXPECT_NEAR(changed / trials, 1.0, 0.15);
}

TEST(MutationTest, DegenerateBoundsUntouched) {
  num::Rng rng(9);
  num::Vec x{0.45};
  const num::Vec lo{0.45}, hi{0.45};
  polynomial_mutation(x, lo, hi, 1.0, 20.0, rng);
  EXPECT_DOUBLE_EQ(x[0], 0.45);
}

TEST(TournamentTest, PrefersDominatingIndividual) {
  num::Rng rng(10);
  std::vector<Individual> pop(2);
  pop[0].f = {1.0, 1.0};
  pop[1].f = {2.0, 2.0};
  pop[0].rank = 0;
  pop[1].rank = 1;
  int wins = 0;
  for (int t = 0; t < 1000; ++t) {
    wins += binary_tournament(pop, rng) == 0;
  }
  // Index 0 wins every mixed tournament and half of the self-tournaments.
  EXPECT_GT(wins, 700);
}

TEST(TournamentTest, FeasibilityDominatesQuality) {
  num::Rng rng(11);
  std::vector<Individual> pop(2);
  pop[0].f = {100.0, 100.0};
  pop[0].violation = 0.0;
  pop[1].f = {0.0, 0.0};
  pop[1].violation = 5.0;
  int wins = 0;
  for (int t = 0; t < 1000; ++t) wins += binary_tournament(pop, rng) == 0;
  EXPECT_GT(wins, 700);
}

TEST(TournamentTest, CrowdingBreaksTies) {
  num::Rng rng(12);
  std::vector<Individual> pop(2);
  pop[0].f = {1.0, 2.0};
  pop[1].f = {2.0, 1.0};
  pop[0].rank = pop[1].rank = 0;
  pop[0].crowding = 10.0;
  pop[1].crowding = 0.1;
  int wins = 0;
  for (int t = 0; t < 1000; ++t) wins += binary_tournament(pop, rng) == 0;
  EXPECT_GT(wins, 700);
}

}  // namespace
}  // namespace rmp::moo
