#include "moo/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "moo/dominance.hpp"
#include "moo/testproblems.hpp"

namespace rmp::moo {
namespace {

/// Mean distance of the non-dominated set from the known ZDT1 front
/// f2 = 1 - sqrt(f1).
double zdt1_front_error(std::span<const Individual> pop) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i : nondominated_indices(pop)) {
    acc += std::fabs(pop[i].f[1] - (1.0 - std::sqrt(pop[i].f[0])));
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 1e9;
}

TEST(Nsga2Test, InitializePopulatesAndEvaluates) {
  const Zdt1 problem(10);
  Nsga2Options o;
  o.population_size = 20;
  Nsga2 alg(problem, o);
  alg.initialize();
  EXPECT_EQ(alg.population().size(), 20u);
  EXPECT_EQ(alg.evaluations(), 20u);
  for (const Individual& ind : alg.population()) {
    EXPECT_EQ(ind.x.size(), 10u);
    EXPECT_EQ(ind.f.size(), 2u);
  }
}

TEST(Nsga2Test, OddPopulationRejected) {
  // Odd sizes used to be silently bumped to even, which skewed every
  // downstream count; the constructor now refuses them loudly.
  const Zdt1 problem(5);
  Nsga2Options o;
  o.population_size = 21;
  EXPECT_THROW(Nsga2(problem, o), std::invalid_argument);
  o.population_size = 2;  // even but below the minimum of 4
  EXPECT_THROW(Nsga2(problem, o), std::invalid_argument);
}

TEST(Nsga2Test, StepKeepsPopulationSizeAndAddsEvaluations) {
  const Zdt1 problem(10);
  Nsga2Options o;
  o.population_size = 20;
  Nsga2 alg(problem, o);
  alg.initialize();
  alg.step();
  EXPECT_EQ(alg.population().size(), 20u);
  EXPECT_EQ(alg.evaluations(), 40u);  // 20 initial + 20 offspring
}

TEST(Nsga2Test, ConvergesOnZdt1) {
  const Zdt1 problem(12);
  Nsga2Options o;
  o.population_size = 60;
  o.seed = 3;
  Nsga2 alg(problem, o);
  alg.initialize();
  const double initial_error = zdt1_front_error(alg.population());
  for (int g = 0; g < 120; ++g) alg.step();
  const double final_error = zdt1_front_error(alg.population());
  EXPECT_LT(final_error, initial_error / 10.0);
  EXPECT_LT(final_error, 0.05);
}

TEST(Nsga2Test, SolvesSchafferExtremes) {
  const Schaffer problem;
  Nsga2Options o;
  o.population_size = 40;
  o.seed = 4;
  Nsga2 alg(problem, o);
  alg.run(80);
  // The front is x in [0, 2]; check both objectives get near their minima.
  double best_f0 = 1e18, best_f1 = 1e18;
  for (const Individual& ind : alg.population()) {
    best_f0 = std::min(best_f0, ind.f[0]);
    best_f1 = std::min(best_f1, ind.f[1]);
  }
  EXPECT_LT(best_f0, 0.1);
  EXPECT_LT(best_f1, 0.1);
}

TEST(Nsga2Test, HandlesConstrainedProblem) {
  const BinhKorn problem;
  Nsga2Options o;
  o.population_size = 40;
  o.seed = 5;
  Nsga2 alg(problem, o);
  alg.run(60);
  // After 60 generations the population should be essentially feasible.
  std::size_t feasible = 0;
  for (const Individual& ind : alg.population()) feasible += ind.feasible();
  EXPECT_GT(feasible, alg.population().size() * 9 / 10);
}

TEST(Nsga2Test, DeterministicForSeed) {
  const Zdt2 problem(8);
  Nsga2Options o;
  o.population_size = 20;
  o.seed = 42;
  Nsga2 a(problem, o), b(problem, o);
  a.run(10);
  b.run(10);
  ASSERT_EQ(a.population().size(), b.population().size());
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_EQ(a.population()[i].x, b.population()[i].x);
  }
}

TEST(Nsga2Test, DifferentSeedsDiffer) {
  const Zdt2 problem(8);
  Nsga2Options oa, ob;
  oa.population_size = ob.population_size = 20;
  oa.seed = 1;
  ob.seed = 2;
  Nsga2 a(problem, oa), b(problem, ob);
  a.run(5);
  b.run(5);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.population().size() && !any_diff; ++i) {
    any_diff = a.population()[i].x != b.population()[i].x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Nsga2Test, InjectReplacesWorst) {
  const Zdt1 problem(6);
  Nsga2Options o;
  o.population_size = 10;
  Nsga2 alg(problem, o);
  alg.initialize();

  // Build a clearly superior immigrant.
  Individual imm;
  imm.x.assign(6, 0.0);
  imm.f.assign(2, 0.0);
  imm.violation = problem.evaluate(imm.x, imm.f);

  alg.inject(std::span<const Individual>(&imm, 1));
  bool found = false;
  for (const Individual& ind : alg.population()) {
    if (ind.x == imm.x) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(alg.population().size(), 10u);
}

TEST(Nsga2Test, RunsOnEveryZdt) {
  // Smoke sweep: all ZDT instances improve their best-f0+f1 sum.
  const Zdt1 z1(8);
  const Zdt2 z2(8);
  const Zdt3 z3(8);
  const Zdt4 z4(6);
  const Zdt6 z6(6);
  const Problem* problems[] = {&z1, &z2, &z3, &z4, &z6};
  for (const Problem* p : problems) {
    Nsga2Options o;
    o.population_size = 30;
    o.seed = 9;
    Nsga2 alg(*p, o);
    alg.run(40);
    for (const Individual& ind : alg.population()) {
      EXPECT_TRUE(num::all_finite(ind.f)) << p->name();
    }
  }
}

}  // namespace
}  // namespace rmp::moo
