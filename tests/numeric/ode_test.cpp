#include "numeric/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::num {
namespace {

// y' = -y, y(0) = 1  =>  y(t) = exp(-t).
const OdeRhs kDecay = [](double, std::span<const double> y, Vec& d) {
  d[0] = -y[0];
};

// Harmonic oscillator: y'' = -y as a 2-state system; energy is conserved.
const OdeRhs kOscillator = [](double, std::span<const double> y, Vec& d) {
  d[0] = y[1];
  d[1] = -y[0];
};

// Classic stiff problem: y' = -1000 (y - cos(t)) - sin(t); y -> cos(t).
const OdeRhs kStiff = [](double t, std::span<const double> y, Vec& d) {
  d[0] = -1000.0 * (y[0] - std::cos(t)) - std::sin(t);
};

struct MethodParam {
  OdeMethod method;
  double tolerance;  // acceptance tolerance on the final value
};

class OdeMethodTest : public ::testing::TestWithParam<MethodParam> {};

TEST_P(OdeMethodTest, ExponentialDecay) {
  OdeOptions opts;
  opts.method = GetParam().method;
  opts.initial_step = 1e-3;
  const OdeResult r = integrate(kDecay, 0.0, Vec{1.0}, 2.0, opts);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.y[0], std::exp(-2.0), GetParam().tolerance);
}

TEST_P(OdeMethodTest, OscillatorPhase) {
  OdeOptions opts;
  opts.method = GetParam().method;
  opts.initial_step = 1e-3;
  opts.abs_tol = 1e-9;
  opts.rel_tol = 1e-8;
  const double t_end = 3.14159265358979323846;  // half period
  const OdeResult r = integrate(kOscillator, 0.0, Vec{1.0, 0.0}, t_end, opts);
  ASSERT_TRUE(r.success);
  // After half a period the state is (-1, 0).
  EXPECT_NEAR(r.y[0], -1.0, 50 * GetParam().tolerance);
  EXPECT_NEAR(r.y[1], 0.0, 50 * GetParam().tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, OdeMethodTest,
    ::testing::Values(MethodParam{OdeMethod::kRk4, 1e-6},
                      MethodParam{OdeMethod::kCashKarp45, 1e-6},
                      MethodParam{OdeMethod::kDormandPrince54, 1e-6},
                      MethodParam{OdeMethod::kRosenbrockW, 1e-4},
                      MethodParam{OdeMethod::kImplicitEuler, 2e-2}));

TEST(OdeTest, StiffProblemWithRosenbrock) {
  OdeOptions opts;
  opts.method = OdeMethod::kRosenbrockW;
  opts.initial_step = 1e-4;
  opts.max_step = 0.5;
  const OdeResult r = integrate(kStiff, 0.0, Vec{0.0}, 5.0, opts);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.y[0], std::cos(5.0), 1e-3);
}

TEST(OdeTest, StiffProblemWithImplicitEuler) {
  OdeOptions opts;
  opts.method = OdeMethod::kImplicitEuler;
  opts.initial_step = 1e-3;
  opts.max_step = 0.05;
  const OdeResult r = integrate(kStiff, 0.0, Vec{0.0}, 5.0, opts);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.y[0], std::cos(5.0), 5e-2);
}

TEST(OdeTest, StiffProblemExplicitIsStabilityLimited) {
  // At loose accuracy the explicit method is limited by stability (step size
  // ~ 2.8/1000 regardless of tolerance) while the L-stable Rosenbrock method
  // is limited only by accuracy — this is why the stiff path exists.
  OdeOptions opts;
  opts.method = OdeMethod::kDormandPrince54;
  opts.abs_tol = 1e-6;
  opts.rel_tol = 1e-4;
  const OdeResult explicit_r = integrate(kStiff, 0.0, Vec{0.0}, 5.0, opts);
  ASSERT_TRUE(explicit_r.success);
  EXPECT_NEAR(explicit_r.y[0], std::cos(5.0), 1e-3);
  const std::size_t explicit_attempts = explicit_r.steps + explicit_r.rejected;

  opts.method = OdeMethod::kRosenbrockW;
  opts.initial_step = 1e-4;
  opts.max_step = 0.5;
  const OdeResult stiff_r = integrate(kStiff, 0.0, Vec{0.0}, 5.0, opts);
  ASSERT_TRUE(stiff_r.success);
  EXPECT_NEAR(stiff_r.y[0], std::cos(5.0), 1e-3);
  EXPECT_LT(stiff_r.steps + stiff_r.rejected, explicit_attempts / 5);
}

TEST(OdeTest, AdaptiveTightensWithTolerance) {
  OdeOptions loose;
  loose.method = OdeMethod::kDormandPrince54;
  loose.abs_tol = 1e-4;
  loose.rel_tol = 1e-3;
  OdeOptions tight = loose;
  tight.abs_tol = 1e-12;
  tight.rel_tol = 1e-11;

  const OdeResult rl = integrate(kDecay, 0.0, Vec{1.0}, 2.0, loose);
  const OdeResult rt = integrate(kDecay, 0.0, Vec{1.0}, 2.0, tight);
  ASSERT_TRUE(rl.success && rt.success);
  const double exact = std::exp(-2.0);
  EXPECT_LE(std::fabs(rt.y[0] - exact), std::fabs(rl.y[0] - exact) + 1e-15);
  EXPECT_GT(rt.steps, rl.steps);
}

TEST(OdeTest, StateFloorEnforced) {
  OdeOptions opts;
  opts.method = OdeMethod::kDormandPrince54;
  opts.state_floor = 0.0;
  // Aggressive decay would overshoot below zero with large steps; the floor
  // keeps concentrations physical.
  const OdeRhs f = [](double, std::span<const double> y, Vec& d) {
    d[0] = -5.0 * y[0] - 0.1;
  };
  const OdeResult r = integrate(f, 0.0, Vec{1.0}, 10.0, opts);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.y[0], 0.0);
}

TEST(OdeTest, SteadyStateOfRelaxation) {
  // y' = 3 - y has the fixed point y = 3.
  const OdeRhs f = [](double, std::span<const double> y, Vec& d) {
    d[0] = 3.0 - y[0];
  };
  SteadyStateOptions opts;
  opts.derivative_tol = 1e-10;
  opts.max_time = 100.0;
  const OdeResult r = integrate_to_steady_state(f, Vec{0.0}, opts);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.y[0], 3.0, 1e-8);
}

TEST(OdeTest, SteadyStateTimesOutOnDrift) {
  // y' = 1 never settles: success must be false.
  const OdeRhs f = [](double, std::span<const double>, Vec& d) { d[0] = 1.0; };
  SteadyStateOptions opts;
  opts.max_time = 5.0;
  const OdeResult r = integrate_to_steady_state(f, Vec{0.0}, opts);
  EXPECT_FALSE(r.success);
  EXPECT_NEAR(r.y[0], 5.0, 1e-6);
}

TEST(OdeTest, NumericJacobianOfLinearSystem) {
  // f = A y with A = [[1, 2], [3, 4]]: the Jacobian is A itself.
  const OdeRhs f = [](double, std::span<const double> y, Vec& d) {
    d[0] = 1.0 * y[0] + 2.0 * y[1];
    d[1] = 3.0 * y[0] + 4.0 * y[1];
  };
  const Matrix j = numeric_jacobian(f, 0.0, Vec{1.0, 1.0});
  EXPECT_NEAR(j(0, 0), 1.0, 1e-5);
  EXPECT_NEAR(j(0, 1), 2.0, 1e-5);
  EXPECT_NEAR(j(1, 0), 3.0, 1e-5);
  EXPECT_NEAR(j(1, 1), 4.0, 1e-5);
}

TEST(OdeTest, ZeroLengthIntervalIsIdentity) {
  const OdeResult r = integrate(kDecay, 1.0, Vec{0.7}, 1.0, {});
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.y[0], 0.7);
  EXPECT_EQ(r.steps, 0u);
}

}  // namespace
}  // namespace rmp::num
