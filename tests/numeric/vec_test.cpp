#include "numeric/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rmp::num {
namespace {

TEST(VecTest, AddSubScale) {
  const Vec a{1.0, 2.0, 3.0};
  const Vec b{0.5, -1.0, 4.0};
  EXPECT_EQ(add(a, b), (Vec{1.5, 1.0, 7.0}));
  EXPECT_EQ(sub(a, b), (Vec{0.5, 3.0, -1.0}));
  EXPECT_EQ(scaled(a, 2.0), (Vec{2.0, 4.0, 6.0}));
}

TEST(VecTest, InplaceOps) {
  Vec y{1.0, 1.0};
  add_inplace(y, Vec{2.0, 3.0});
  EXPECT_EQ(y, (Vec{3.0, 4.0}));
  sub_inplace(y, Vec{1.0, 1.0});
  EXPECT_EQ(y, (Vec{2.0, 3.0}));
  scale_inplace(y, -1.0);
  EXPECT_EQ(y, (Vec{-2.0, -3.0}));
  axpy(y, 2.0, Vec{1.0, 1.0});
  EXPECT_EQ(y, (Vec{0.0, -1.0}));
}

TEST(VecTest, DotAndNorms) {
  const Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vec{-9.0, 2.0}), 9.0);
}

TEST(VecTest, Distances) {
  const Vec a{0.0, 0.0};
  const Vec b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(dist2(a, b), 25.0);  // squared, no sqrt
  EXPECT_DOUBLE_EQ(dist1(a, b), 7.0);
  EXPECT_DOUBLE_EQ(dist_inf(a, b), 4.0);
}

TEST(VecTest, DistSquaredConsistency) {
  const Vec a{1.0, 2.0, -3.0};
  const Vec b{0.5, -1.0, 4.0};
  EXPECT_NEAR(dist(a, b) * dist(a, b), dist2(a, b), 1e-12 * dist2(a, b));
  EXPECT_DOUBLE_EQ(dist2(a, a), 0.0);
}

TEST(VecTest, DistanceIsSymmetric) {
  const Vec a{1.0, -2.0, 0.5};
  const Vec b{-4.0, 0.25, 3.0};
  EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
  EXPECT_DOUBLE_EQ(dist2(a, b), dist2(b, a));
  EXPECT_DOUBLE_EQ(dist1(a, b), dist1(b, a));
  EXPECT_DOUBLE_EQ(dist_inf(a, b), dist_inf(b, a));
}

TEST(VecTest, ClampInplace) {
  Vec y{-5.0, 0.5, 10.0};
  const Vec lo{0.0, 0.0, 0.0};
  const Vec hi{1.0, 1.0, 1.0};
  clamp_inplace(y, lo, hi);
  EXPECT_EQ(y, (Vec{0.0, 0.5, 1.0}));
}

TEST(VecTest, AllFinite) {
  EXPECT_TRUE(all_finite(Vec{1.0, -2.0, 0.0}));
  EXPECT_FALSE(all_finite(Vec{1.0, std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(all_finite(Vec{std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(all_finite(Vec{}));
}

TEST(VecTest, SumMinMax) {
  const Vec a{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(sum(a), 4.0);
  EXPECT_DOUBLE_EQ(min_element(a), -1.0);
  EXPECT_DOUBLE_EQ(max_element(a), 3.0);
}

TEST(VecTest, Linspace) {
  const Vec v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(VecTest, LinspaceHitsEndpointExactly) {
  const Vec v = linspace(0.1, 0.7, 7);
  EXPECT_DOUBLE_EQ(v.back(), 0.7);
}

TEST(VecTest, Constant) {
  const Vec v = constant(4, 2.5);
  EXPECT_EQ(v, (Vec{2.5, 2.5, 2.5, 2.5}));
}

// Property sweep: ||a+b|| <= ||a|| + ||b|| (triangle inequality) for a grid
// of scales.
class VecNormProperty : public ::testing::TestWithParam<double> {};

TEST_P(VecNormProperty, TriangleInequality) {
  const double s = GetParam();
  const Vec a{s, -2.0 * s, 3.0};
  const Vec b{-0.5, s, s * s};
  EXPECT_LE(norm2(add(a, b)), norm2(a) + norm2(b) + 1e-12);
  EXPECT_LE(norm1(add(a, b)), norm1(a) + norm1(b) + 1e-12);
  EXPECT_LE(norm_inf(add(a, b)), norm_inf(a) + norm_inf(b) + 1e-12);
}

TEST_P(VecNormProperty, CauchySchwarz) {
  const double s = GetParam();
  const Vec a{s, 1.0, -s};
  const Vec b{2.0, -s, 0.25};
  EXPECT_LE(std::fabs(dot(a, b)), norm2(a) * norm2(b) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, VecNormProperty,
                         ::testing::Values(0.0, 0.1, 1.0, -3.0, 17.5, 1e6));

}  // namespace
}  // namespace rmp::num
