#include "numeric/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "numeric/stats.hpp"

namespace rmp::num {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(11);
  std::vector<double> xs(100000);
  for (double& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(13);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(14);
  std::set<long> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(15);
  const auto p = rng.permutation(50);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(16);
  std::vector<int> v{1, 2, 2, 3, 5, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitStreamsDiverge) {
  Rng parent(77);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // Engine must not be stuck at zero.
  std::uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= rng.next_u64();
  EXPECT_NE(acc, 0u);
}

TEST(RngTest, StateRoundTripResumesBitExactly) {
  Rng a(42);
  for (int i = 0; i < 37; ++i) (void)a.next_u64();
  // One normal() from an empty bank leaves the Marsaglia second normal
  // cached — the state round-trip must carry it, or the resumed stream
  // skips a value.
  (void)a.normal();

  Rng b(999);  // deliberately different seed; set_state overwrites it
  b.set_state(a.state());
  EXPECT_EQ(a.normal(), b.normal());  // the cached normal itself
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.normal(), b.normal());
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, SetStateEscapesAllZeroState) {
  Rng rng(1);
  rng.set_state(Rng::State{});  // all-zero words would wedge xoshiro
  std::uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= rng.next_u64();
  EXPECT_NE(acc, 0u);
}

}  // namespace
}  // namespace rmp::num
