#include "numeric/simplex.hpp"

#include <gtest/gtest.h>

#include "numeric/rng.hpp"

namespace rmp::num {
namespace {

LpProblem make_problem(std::size_t rows, std::size_t cols) {
  LpProblem p;
  p.constraint_matrix = Matrix(rows, cols);
  p.rhs.assign(rows, 0.0);
  p.objective.assign(cols, 0.0);
  p.lower.assign(cols, 0.0);
  p.upper.assign(cols, kLpInfinity);
  return p;
}

TEST(SimplexTest, SingleVariableBound) {
  // max x s.t. x = x (no constraint rows), 0 <= x <= 7.
  LpProblem p = make_problem(0, 1);
  p.objective[0] = 1.0;
  p.upper[0] = 7.0;
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 7.0, 1e-9);
}

TEST(SimplexTest, SimpleEqualitySystem) {
  // max x0 + x1 s.t. x0 + x1 = 10, x0 <= 4 -> optimum 10 with x0 = 4, x1 = 6.
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = 1.0;
  p.rhs[0] = 10.0;
  p.objective = {2.0, 1.0};
  p.upper = {4.0, kLpInfinity};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
  EXPECT_NEAR(s.objective_value, 14.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x0 + x1 = -5 with x >= 0 is infeasible.
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = 1.0;
  p.rhs[0] = -5.0;
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x0 with x0 - x1 = 0 and both unbounded above.
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = -1.0;
  p.objective[0] = 1.0;
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // max x0 + x1, x0 + x1 = 1, -5 <= x0 <= 0, x1 free-ish.
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = 1.0;
  p.rhs[0] = 1.0;
  p.objective = {1.0, -1.0};  // prefer mass on x0
  p.lower = {-5.0, -10.0};
  p.upper = {0.0, 20.0};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
}

TEST(SimplexTest, FreeVariables) {
  // max -x1 with x0 + x1 = 3, x0 totally free -> x1 at its lower bound.
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = 1.0;
  p.rhs[0] = 3.0;
  p.objective = {0.0, -1.0};
  p.lower = {-kLpInfinity, -2.0};
  p.upper = {kLpInfinity, 5.0};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[1], -2.0, 1e-8);
  EXPECT_NEAR(s.x[0], 5.0, 1e-8);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints meeting at a degenerate vertex.
  LpProblem p = make_problem(3, 3);
  // x0 + x1 = 1; x0 + x2 = 1; x1 - x2 = 0.
  p.constraint_matrix(0, 0) = 1;
  p.constraint_matrix(0, 1) = 1;
  p.constraint_matrix(1, 0) = 1;
  p.constraint_matrix(1, 2) = 1;
  p.constraint_matrix(2, 1) = 1;
  p.constraint_matrix(2, 2) = -1;
  p.rhs = {1.0, 1.0, 0.0};
  p.objective = {1.0, 0.0, 0.0};
  p.upper = {10.0, 10.0, 10.0};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 1.0, 1e-8);
}

TEST(SimplexTest, SolutionSatisfiesConstraints) {
  Rng rng(99);
  // Random feasible-by-construction problems: x_feas random in box, rhs = A x_feas.
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 3 + rng.uniform_index(5);
    const std::size_t n = m + 2 + rng.uniform_index(6);
    LpProblem p = make_problem(m, n);
    Vec x_feas(n);
    for (std::size_t j = 0; j < n; ++j) {
      p.lower[j] = -2.0;
      p.upper[j] = 5.0;
      x_feas[j] = rng.uniform(-2.0, 5.0);
      p.objective[j] = rng.normal();
    }
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        p.constraint_matrix(i, j) = rng.uniform(-1.0, 1.0);
    p.rhs = p.constraint_matrix.multiply(x_feas);

    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::kOptimal) << "trial " << trial;
    // Constraints hold.
    const Vec ax = p.constraint_matrix.multiply(s.x);
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(ax[i], p.rhs[i], 1e-6);
    // Bounds hold.
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(s.x[j], p.lower[j] - 1e-7);
      EXPECT_LE(s.x[j], p.upper[j] + 1e-7);
    }
    // Optimal is at least as good as the feasible construction point.
    EXPECT_GE(s.objective_value, dot(p.objective, x_feas) - 1e-6);
  }
}

TEST(SimplexTest, FixedVariableHandled) {
  // A variable with lower == upper (like the paper's ATP maintenance flux).
  LpProblem p = make_problem(1, 2);
  p.constraint_matrix(0, 0) = 1.0;
  p.constraint_matrix(0, 1) = -1.0;
  p.rhs[0] = 0.0;
  p.objective = {1.0, 0.0};
  p.lower = {0.0, 0.45};
  p.upper = {10.0, 0.45};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.45, 1e-8);
  EXPECT_NEAR(s.x[1], 0.45, 1e-8);
}

TEST(SimplexTest, MediumScaleDiet) {
  // A chain topology resembling a linear pathway: maximize terminal flux.
  const std::size_t n = 40;
  LpProblem p = make_problem(n - 1, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    p.constraint_matrix(i, i) = 1.0;
    p.constraint_matrix(i, i + 1) = -1.0;
  }
  p.objective[n - 1] = 1.0;
  for (std::size_t j = 0; j < n; ++j) p.upper[j] = 100.0;
  p.upper[n / 2] = 3.5;  // a bottleneck in the middle
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 3.5, 1e-8);
}

}  // namespace
}  // namespace rmp::num
