#include "numeric/sparse.hpp"

#include <gtest/gtest.h>

#include "numeric/rng.hpp"

namespace rmp::num {
namespace {

SparseMatrix small() {
  SparseMatrix::Builder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(1, 1, -3.0);
  return b.build();
}

TEST(SparseTest, BuildAndAccess) {
  const SparseMatrix m = small();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -3.0);
}

TEST(SparseTest, DuplicateEntriesAreSummed) {
  SparseMatrix::Builder b(1, 1);
  b.add(0, 0, 1.5);
  b.add(0, 0, 2.5);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(SparseTest, CancellingDuplicatesVanish) {
  SparseMatrix::Builder b(1, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  b.add(0, 1, 5.0);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(SparseTest, ZeroEntriesIgnored) {
  SparseMatrix::Builder b(2, 2);
  b.add(0, 0, 0.0);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(42);
  SparseMatrix::Builder b(20, 30);
  for (int k = 0; k < 100; ++k) {
    b.add(rng.uniform_index(20), rng.uniform_index(30), rng.normal());
  }
  const SparseMatrix m = b.build();
  const Matrix dense = m.to_dense();

  Vec x(30);
  for (double& v : x) v = rng.normal();

  const Vec ys = m.multiply(x);
  const Vec yd = dense.multiply(x);
  ASSERT_EQ(ys.size(), yd.size());
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseTest, MultiplyTransposedMatchesDense) {
  Rng rng(43);
  SparseMatrix::Builder b(15, 10);
  for (int k = 0; k < 60; ++k) {
    b.add(rng.uniform_index(15), rng.uniform_index(10), rng.normal());
  }
  const SparseMatrix m = b.build();
  const Matrix dense_t = m.to_dense().transposed();

  Vec x(15);
  for (double& v : x) v = rng.normal();

  Vec ys;
  m.multiply_transposed(x, ys);
  const Vec yd = dense_t.multiply(x);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseTest, ResidualNorm1) {
  const SparseMatrix m = small();
  // S x for x = (1, 1, 1): rows (3, -3) -> |3| + |-3| = 6.
  EXPECT_DOUBLE_EQ(m.residual_norm1(Vec{1.0, 1.0, 1.0}), 6.0);
  EXPECT_DOUBLE_EQ(m.residual_norm1(Vec{0.0, 0.0, 0.0}), 0.0);
}

TEST(SparseTest, EmptyMatrix) {
  SparseMatrix::Builder b(3, 3);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 0u);
  const Vec y = m.multiply(Vec{1.0, 2.0, 3.0});
  EXPECT_EQ(y, (Vec{0.0, 0.0, 0.0}));
}

}  // namespace
}  // namespace rmp::num
