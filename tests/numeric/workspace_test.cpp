// Scratch-arena reuse contract (ARCHITECTURE.md, "kinetic engine v2"): a
// Workspace warms up to its high-water capacity during the first solve of a
// given shape, and every later same-shape solve through it performs ZERO
// allocations — allocation_events() goes quiet.  Run under ASan in CI
// (ci/build.sh SAN_TESTS) so leaks and lifetime bugs in the pool surface.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "numeric/newton.hpp"
#include "numeric/ode.hpp"
#include "numeric/shooting.hpp"
#include "numeric/workspace.hpp"

namespace rmp::num {
namespace {

void two_dim_system(std::span<const double> x, Vec& out) {
  out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
  out[1] = x[0] * x[1] - 2.0;
}

void stiff_rhs(double, std::span<const double> y, Vec& d) {
  d[0] = -1000.0 * (y[0] - std::cos(y[1]));
  d[1] = y[0] - y[1];
}

void vdp_rhs(double, std::span<const double> y, Vec& d) {
  d[0] = y[1];
  d[1] = (1.0 - y[0] * y[0]) * y[1] - y[0];
}

TEST(WorkspaceTest, PushPopReusesBuffers) {
  Workspace ws;
  {
    ScratchVec a(ws, 8);
    ScratchVec b(ws, 4);
    EXPECT_EQ(ws.in_use(), 2u);
    EXPECT_EQ(a.size(), 8u);
    EXPECT_EQ(b.size(), 4u);
  }
  EXPECT_EQ(ws.in_use(), 0u);
  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 100; ++i) {
    ScratchVec a(ws, 8);  // first slot again, capacity already 8
    ScratchVec b(ws, 4);
    a[0] = 1.0;
    b[0] = 2.0;
  }
  EXPECT_EQ(ws.allocation_events(), warm);
}

TEST(WorkspaceTest, GrowingABufferCountsAnAllocationEvent) {
  Workspace ws;
  { ScratchVec a(ws, 4); }
  const std::size_t warm = ws.allocation_events();
  { ScratchVec a(ws, 4); }  // fits: quiet
  EXPECT_EQ(ws.allocation_events(), warm);
  { ScratchVec a(ws, 64); }  // must grow: one event
  EXPECT_EQ(ws.allocation_events(), warm + 1);
  { ScratchVec a(ws, 64); }  // grown capacity sticks
  EXPECT_EQ(ws.allocation_events(), warm + 1);
}

TEST(WorkspaceTest, MatrixAndLuPoolsReuse) {
  Workspace ws;
  {
    ScratchMat m(ws, 3, 3);
    m(0, 0) = 2.0;
    m(1, 1) = 3.0;
    m(2, 2) = 4.0;
    ScratchLu lu(ws);
    ASSERT_TRUE(lu.get().factor(m.get()));
    EXPECT_EQ(ws.in_use(), 2u);
  }
  EXPECT_EQ(ws.in_use(), 0u);
  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 50; ++i) {
    ScratchMat m(ws, 3, 3);
    m(0, 0) = 1.0 + i;
    m(1, 1) = 1.0;
    m(2, 2) = 1.0;
    ScratchLu lu(ws);
    ASSERT_TRUE(lu.get().factor(m.get()));
  }
  EXPECT_EQ(ws.allocation_events(), warm);
}

TEST(WorkspaceTest, RepeatedNewtonSolvesGoQuietAfterWarmup) {
  Workspace ws;
  NewtonOptions opts;
  opts.workspace = &ws;
  const NonlinearSystem f = two_dim_system;

  const NewtonResult first = solve_newton(f, Vec{2.5, 0.5}, opts);
  ASSERT_TRUE(first.converged);
  EXPECT_GT(ws.allocation_events(), 0u);  // the warm-up did allocate
  EXPECT_EQ(ws.in_use(), 0u);

  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 64; ++i) {
    const NewtonResult r = solve_newton(f, Vec{2.5, 0.5}, opts);
    ASSERT_TRUE(r.converged);
  }
  EXPECT_EQ(ws.allocation_events(), warm);
  EXPECT_EQ(ws.in_use(), 0u);
}

TEST(WorkspaceTest, RepeatedPtcSolvesGoQuietAfterWarmup) {
  Workspace ws;
  PtcOptions opts;
  opts.workspace = &ws;
  const NonlinearSystem f = two_dim_system;

  ASSERT_TRUE(solve_pseudo_transient(f, Vec{0.5, 0.5}, opts).converged);
  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(solve_pseudo_transient(f, Vec{0.5, 0.5}, opts).converged);
  }
  EXPECT_EQ(ws.allocation_events(), warm);
  EXPECT_EQ(ws.in_use(), 0u);
}

class WorkspaceOdeMethods : public ::testing::TestWithParam<OdeMethod> {};

TEST_P(WorkspaceOdeMethods, RepeatedIntegrationsGoQuietAfterWarmup) {
  Workspace ws;
  OdeOptions opts;
  opts.method = GetParam();
  opts.workspace = &ws;
  opts.abs_tol = 1e-8;
  opts.rel_tol = 1e-6;
  const OdeRhs f = stiff_rhs;

  const OdeResult first = integrate(f, 0.0, Vec{0.0, 0.0}, 5.0, opts);
  ASSERT_TRUE(first.success);
  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(integrate(f, 0.0, Vec{0.0, 0.0}, 5.0, opts).success);
  }
  EXPECT_EQ(ws.allocation_events(), warm);
  EXPECT_EQ(ws.in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, WorkspaceOdeMethods,
                         ::testing::Values(OdeMethod::kRk4,
                                           OdeMethod::kCashKarp45,
                                           OdeMethod::kDormandPrince54,
                                           OdeMethod::kRosenbrockW,
                                           OdeMethod::kRosenbrock3,
                                           OdeMethod::kImplicitEuler));

TEST(WorkspaceTest, RepeatedShootingSolvesGoQuietAfterWarmup) {
  Workspace ws;
  ShootingOptions opts;
  opts.workspace = &ws;
  opts.ode.workspace = &ws;
  opts.ode.max_step = 0.5;
  const OdeRhs f = vdp_rhs;

  const ShootingResult first = solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts);
  ASSERT_TRUE(first.converged);
  const std::size_t warm = ws.allocation_events();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts).converged);
  }
  EXPECT_EQ(ws.allocation_events(), warm);
  EXPECT_EQ(ws.in_use(), 0u);
}

TEST(WorkspaceTest, ThreadLocalFallbackIsQuietOnRepeatSolves) {
  // Entry points without an explicit workspace share the thread's fallback
  // arena; after one warm-up the whole default path is allocation-free too.
  const NonlinearSystem f = two_dim_system;
  ASSERT_TRUE(solve_newton(f, Vec{2.5, 0.5}).converged);
  Workspace& tls = Workspace::thread_local_instance();
  const std::size_t warm = tls.allocation_events();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(solve_newton(f, Vec{2.5, 0.5}).converged);
  }
  EXPECT_EQ(tls.allocation_events(), warm);
}

}  // namespace
}  // namespace rmp::num
