#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/rng.hpp"

namespace rmp::num {
namespace {

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vec y = a.multiply(Vec{1.0, 1.0, 1.0});
  EXPECT_EQ(y, (Vec{6.0, 15.0}));
}

TEST(MatrixTest, MultiplyTransposed) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vec y = a.multiply_transposed(Vec{1.0, 1.0});
  EXPECT_EQ(y, (Vec{5.0, 7.0, 9.0}));
}

TEST(MatrixTest, MatrixProductAgainstIdentity) {
  Rng rng(5);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  const Matrix prod = a.multiply(Matrix::identity(4));
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  a(1, 0) = -2.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
  const Matrix tt = t.transposed();
  EXPECT_EQ(tt.data(), a.data());
}

TEST(LuTest, SolvesDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  a(2, 2) = 0.5;
  const auto x = solve_linear(a, Vec{2.0, 8.0, 1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[2], 2.0, 1e-12);
}

TEST(LuTest, SolveRandomSystemsResidual) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
      a(r, r) += 3.0;  // diagonal dominance avoids accidental singularity
    }
    Vec b(n);
    for (double& v : b) v = rng.normal();
    const auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    const Vec r = a.multiply(*x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-8);
  }
}

TEST(LuTest, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_FALSE(LuFactorization::compute(a).has_value());
}

TEST(LuTest, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 4.0;
  a(1, 1) = 2.0;
  const auto f = LuFactorization::compute(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->determinant(), 2.0, 1e-12);
}

TEST(LuTest, PermutationSignInDeterminant) {
  // Row-swapped identity has determinant -1.
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  const auto f = LuFactorization::compute(a);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->determinant(), -1.0, 1e-12);
}

TEST(RowReduceTest, RankOfRankDeficient) {
  Matrix a(3, 3);
  // Row 2 = row 0 + row 1.
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 0;
  a(1, 1) = 1;
  a(1, 2) = 1;
  a(2, 0) = 1;
  a(2, 1) = 3;
  a(2, 2) = 4;
  const RowEchelon re = row_reduce(a);
  EXPECT_EQ(re.rank, 2u);
}

TEST(NullspaceTest, BasisSpansKernel) {
  // A = [1 1 0; 0 0 1] has kernel spanned by (1, -1, 0).
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 2) = 1;
  const Matrix basis = nullspace_basis(a);
  ASSERT_EQ(basis.cols(), 1u);
  ASSERT_EQ(basis.rows(), 3u);
  // Check A * basis_col == 0.
  Vec col(3);
  for (std::size_t r = 0; r < 3; ++r) col[r] = basis(r, 0);
  const Vec res = a.multiply(col);
  EXPECT_NEAR(res[0], 0.0, 1e-12);
  EXPECT_NEAR(res[1], 0.0, 1e-12);
}

TEST(NullspaceTest, DimensionTheorem) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = 3 + rng.uniform_index(4);
    const std::size_t cols = rows + 1 + rng.uniform_index(5);
    Matrix a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.normal();
    const RowEchelon re = row_reduce(a);
    const Matrix basis = nullspace_basis(a);
    EXPECT_EQ(basis.cols(), cols - re.rank);
    // Every basis column is in the kernel.
    for (std::size_t k = 0; k < basis.cols(); ++k) {
      Vec col(cols);
      for (std::size_t r = 0; r < cols; ++r) col[r] = basis(r, k);
      const Vec res = a.multiply(col);
      EXPECT_LT(norm_inf(res), 1e-8);
    }
  }
}

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  Rng rng(11);
  Matrix a(6, 4);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  const Matrix q = orthonormalize_columns(a);
  ASSERT_EQ(q.cols(), 4u);
  for (std::size_t i = 0; i < q.cols(); ++i) {
    for (std::size_t j = 0; j < q.cols(); ++j) {
      double d = 0.0;
      for (std::size_t r = 0; r < q.rows(); ++r) d += q(r, i) * q(r, j);
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(OrthonormalizeTest, DropsDependentColumns) {
  Matrix a(3, 3);
  // Third column = first + second.
  a(0, 0) = 1;
  a(1, 1) = 1;
  a(0, 2) = 1;
  a(1, 2) = 1;
  const Matrix q = orthonormalize_columns(a);
  EXPECT_EQ(q.cols(), 2u);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

}  // namespace
}  // namespace rmp::num
