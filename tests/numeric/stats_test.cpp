#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rmp::num {
namespace {

TEST(StatsTest, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(StatsTest, PercentileInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(StatsTest, PercentileOutOfRangeClampsInsteadOfIndexingOutOfBounds) {
  // Out-of-range p used to be guarded only by assert(), so Release builds
  // read past the sorted buffer; it now clamps to the nearest bound.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, -1e9), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1e9), 4.0);
}

TEST(StatsTest, PercentileOfEmptyThrows) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)median(std::vector<double>{}), std::invalid_argument);
}

TEST(StatsTest, SummarizeEmptyIsZeroedAndDoesNotThrow) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.p25, 0.0);
  EXPECT_DOUBLE_EQ(s.p75, 0.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yn{-2.0, -4.0, -6.0, -8.0};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerate) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(StatsTest, SummaryFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(StatsTest, SummaryEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// Percentile must be monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, NonDecreasing) {
  const std::vector<double> xs{5.0, -1.0, 3.5, 0.0, 2.0, 2.0, 9.0};
  const double p = GetParam();
  EXPECT_LE(percentile(xs, p), percentile(xs, std::min(p + 10.0, 100.0)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, PercentileMonotone,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 60.0, 75.0, 90.0));

}  // namespace
}  // namespace rmp::num
