#include "numeric/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::num {
namespace {

TEST(NewtonTest, ScalarRoot) {
  // F(x) = x^2 - 4: root at 2 from positive start.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] - 4.0;
  };
  const NewtonResult r = solve_newton(f, Vec{5.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(NewtonTest, TwoDimensionalSystem) {
  // x^2 + y^2 = 5, x*y = 2  ->  (x, y) = (2, 1) near the start (2.5, 0.5).
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    out[1] = x[0] * x[1] - 2.0;
  };
  const NewtonResult r = solve_newton(f, Vec{2.5, 0.5});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
}

TEST(NewtonTest, LinearSystemOneIteration) {
  // F(x) = A x - b converges in a single Newton step.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = 2.0 * x[0] + x[1] - 3.0;
    out[1] = x[0] - x[1];
  };
  const NewtonResult r = solve_newton(f, Vec{10.0, -10.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
  EXPECT_LE(r.iterations, 3u);
}

TEST(NewtonTest, DampingRescuesOvershoot) {
  // F(x) = atan(x): full Newton steps diverge from |x0| >~ 1.39; the
  // backtracking line search must still converge.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = std::atan(x[0]);
  };
  const NewtonResult r = solve_newton(f, Vec{3.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(NewtonTest, StateFloorKeepsPositive) {
  // Root of x - 2 = 0 with floor 0.5; iterates must never dip below.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = std::log(x[0] / 2.0);  // needs x > 0 to evaluate
  };
  NewtonOptions opts;
  opts.state_floor = 1e-6;
  const NewtonResult r = solve_newton(f, Vec{0.1}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(NewtonTest, ReportsFailureOnNoRoot) {
  // F(x) = x^2 + 1 has no real root: must not claim convergence.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + 1.0;
  };
  NewtonOptions opts;
  opts.max_iterations = 30;
  const NewtonResult r = solve_newton(f, Vec{1.0}, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.residual_norm, 0.5);
}

TEST(NewtonTest, AlreadyAtRoot) {
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] - 1.0;
  };
  const NewtonResult r = solve_newton(f, Vec{1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

// Parameterized: roots of x^3 - c for several c, from a far start.
class NewtonCubeRoot : public ::testing::TestWithParam<double> {};

TEST_P(NewtonCubeRoot, Converges) {
  const double c = GetParam();
  const NonlinearSystem f = [c](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] * x[0] - c;
  };
  const NewtonResult r = solve_newton(f, Vec{10.0});
  ASSERT_TRUE(r.converged) << "c = " << c;
  EXPECT_NEAR(r.x[0], std::cbrt(c), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Values, NewtonCubeRoot,
                         ::testing::Values(0.001, 0.5, 1.0, 8.0, 1000.0));

}  // namespace
}  // namespace rmp::num
