#include "numeric/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::num {
namespace {

TEST(NewtonTest, ScalarRoot) {
  // F(x) = x^2 - 4: root at 2 from positive start.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] - 4.0;
  };
  const NewtonResult r = solve_newton(f, Vec{5.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(NewtonTest, TwoDimensionalSystem) {
  // x^2 + y^2 = 5, x*y = 2  ->  (x, y) = (2, 1) near the start (2.5, 0.5).
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    out[1] = x[0] * x[1] - 2.0;
  };
  const NewtonResult r = solve_newton(f, Vec{2.5, 0.5});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
}

TEST(NewtonTest, LinearSystemOneIteration) {
  // F(x) = A x - b converges in a single Newton step.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = 2.0 * x[0] + x[1] - 3.0;
    out[1] = x[0] - x[1];
  };
  const NewtonResult r = solve_newton(f, Vec{10.0, -10.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
  EXPECT_LE(r.iterations, 3u);
}

TEST(NewtonTest, DampingRescuesOvershoot) {
  // F(x) = atan(x): full Newton steps diverge from |x0| >~ 1.39; the
  // backtracking line search must still converge.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = std::atan(x[0]);
  };
  const NewtonResult r = solve_newton(f, Vec{3.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(NewtonTest, StateFloorKeepsPositive) {
  // Root of x - 2 = 0 with floor 0.5; iterates must never dip below.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = std::log(x[0] / 2.0);  // needs x > 0 to evaluate
  };
  NewtonOptions opts;
  opts.state_floor = 1e-6;
  const NewtonResult r = solve_newton(f, Vec{0.1}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(NewtonTest, ReportsFailureOnNoRoot) {
  // F(x) = x^2 + 1 has no real root: must not claim convergence.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + 1.0;
  };
  NewtonOptions opts;
  opts.max_iterations = 30;
  const NewtonResult r = solve_newton(f, Vec{1.0}, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.residual_norm, 0.5);
}

TEST(NewtonTest, AlreadyAtRoot) {
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] - 1.0;
  };
  const NewtonResult r = solve_newton(f, Vec{1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(NewtonTest, CountsRhsEvaluationsAndFactorizations) {
  // Classic (FD, no chord) bookkeeping: every iteration builds one Jacobian
  // (n FD probes) and factors it once; every build and backtrack trial plus
  // the initial residual is an RHS evaluation.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    out[1] = x[0] * x[1] - 2.0;
  };
  const NewtonResult r = solve_newton(f, Vec{2.5, 0.5});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.jacobian_factorizations, r.iterations);
  // >= 1 (initial) + per iteration: 2 FD probes + >= 1 trial.
  EXPECT_GE(r.rhs_evaluations, 1 + 3 * r.iterations);
}

TEST(NewtonTest, AnalyticJacobianSolvesWithoutFdProbes) {
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] + x[1] * x[1] - 5.0;
    out[1] = x[0] * x[1] - 2.0;
  };
  NewtonOptions opts;
  opts.jacobian = [](std::span<const double> x, Matrix& j) {
    j(0, 0) = 2.0 * x[0];
    j(0, 1) = 2.0 * x[1];
    j(1, 0) = x[1];
    j(1, 1) = x[0];
  };
  const NewtonResult a = solve_newton(f, Vec{2.5, 0.5}, opts);
  ASSERT_TRUE(a.converged);
  EXPECT_NEAR(a.x[0], 2.0, 1e-7);
  EXPECT_NEAR(a.x[1], 1.0, 1e-7);
  // No finite-difference probes: one RHS per backtrack trial plus the
  // initial residual — strictly fewer than the FD path's n-per-build.
  const NewtonResult fd = solve_newton(f, Vec{2.5, 0.5});
  EXPECT_LT(a.rhs_evaluations, fd.rhs_evaluations);
  EXPECT_LE(a.rhs_evaluations, 1 + 2 * a.iterations);
}

TEST(NewtonTest, ChordReuseAmortizesFactorizations) {
  // Mildly nonlinear system: stale factorizations keep descending, so chord
  // mode must converge to the same root with fewer factorizations than
  // iterations.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] + 0.1 * x[0] * x[0] - 1.0;
    out[1] = x[1] + 0.1 * x[0] * x[1] - 2.0;
  };
  NewtonOptions classic;
  classic.tolerance = 1e-12;
  NewtonOptions chord = classic;
  chord.chord_max_age = 16;
  const NewtonResult a = solve_newton(f, Vec{3.0, 3.0}, classic);
  const NewtonResult b = solve_newton(f, Vec{3.0, 3.0}, chord);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.x[0], b.x[0], 1e-9);
  EXPECT_NEAR(a.x[1], b.x[1], 1e-9);
  EXPECT_EQ(a.jacobian_factorizations, a.iterations);
  EXPECT_LT(b.jacobian_factorizations, b.iterations);
}

TEST(NewtonTest, ChordRefreshesOnStalledResidual) {
  // x^3 - 1 from x = 3: the Jacobian changes by 9x along the path, so a
  // never-refreshed chord direction would crawl.  The stall/damping
  // heuristics must trigger intermediate refreshes: more than one
  // factorization, yet fewer than one per iteration, and the exact root.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] * x[0] - 1.0;
  };
  NewtonOptions opts;
  opts.chord_max_age = 1000;  // age alone never forces a refresh
  opts.tolerance = 1e-12;
  const NewtonResult r = solve_newton(f, Vec{3.0}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_GT(r.jacobian_factorizations, 1u);
  EXPECT_LT(r.jacobian_factorizations, r.iterations);
}

TEST(NewtonTest, SingularJacobianGivesUpCleanly) {
  // J = [[2 x0, 0], [2 x0, 0]] is singular everywhere: the solver must
  // report failure without iterating or producing non-finite state.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] - 1.0;
    out[1] = x[0] * x[0] - 1.0;
  };
  const NewtonResult r = solve_newton(f, Vec{3.0, 3.0});
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(all_finite(r.x));
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.jacobian_factorizations, 1u);
}

TEST(NewtonTest, StateFloorInteractsWithBacktrackingUnderChord) {
  // The log system needs x > 0 to evaluate; a full step from 0.1 undershoots
  // and must be floored/backtracked — also under chord reuse, where a stale
  // direction may point below the floor again.
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = std::log(x[0] / 2.0);
  };
  NewtonOptions opts;
  opts.state_floor = 1e-6;
  opts.chord_max_age = 8;
  const NewtonResult r = solve_newton(f, Vec{0.1}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(PtcTest, StiffTwoDimensionalSystemReachesKnownRoot) {
  // x0' = 1000 (cos(x1) - x0), x1' = x0 - x1: eigenvalue spread ~1000, and
  // the equilibrium is the Dottie fixed point x0 = x1 = cos(x) = 0.739085...
  const double dottie = 0.7390851332151607;
  const NonlinearSystem f = [](std::span<const double> x, Vec& out) {
    out[0] = 1000.0 * (std::cos(x[1]) - x[0]);
    out[1] = x[0] - x[1];
  };
  PtcOptions opts;
  opts.tolerance = 1e-10;
  const NewtonResult fd = solve_pseudo_transient(f, Vec{0.0, 0.0}, opts);
  ASSERT_TRUE(fd.converged);
  EXPECT_NEAR(fd.x[0], dottie, 1e-7);
  EXPECT_NEAR(fd.x[1], dottie, 1e-7);

  // Same root through the analytic-Jacobian + chord path, cheaper in RHS.
  PtcOptions fast = opts;
  fast.jacobian = [](std::span<const double> x, Matrix& j) {
    j(0, 0) = -1000.0;
    j(0, 1) = -1000.0 * std::sin(x[1]);
    j(1, 0) = 1.0;
    j(1, 1) = -1.0;
  };
  fast.chord_max_age = 8;
  const NewtonResult an = solve_pseudo_transient(f, Vec{0.0, 0.0}, fast);
  ASSERT_TRUE(an.converged);
  EXPECT_NEAR(an.x[0], dottie, 1e-7);
  EXPECT_NEAR(an.x[1], dottie, 1e-7);
  EXPECT_LT(an.rhs_evaluations, fd.rhs_evaluations);
}

// Parameterized: roots of x^3 - c for several c, from a far start.
class NewtonCubeRoot : public ::testing::TestWithParam<double> {};

TEST_P(NewtonCubeRoot, Converges) {
  const double c = GetParam();
  // Capturing lambda: must be a named local — NonlinearSystem is a
  // non-owning FunctionRef and would dangle on a temporary.
  const auto cube = [c](std::span<const double> x, Vec& out) {
    out[0] = x[0] * x[0] * x[0] - c;
  };
  const NonlinearSystem f = cube;
  const NewtonResult r = solve_newton(f, Vec{10.0});
  ASSERT_TRUE(r.converged) << "c = " << c;
  EXPECT_NEAR(r.x[0], std::cbrt(c), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Values, NewtonCubeRoot,
                         ::testing::Values(0.001, 0.5, 1.0, 8.0, 1000.0));

}  // namespace
}  // namespace rmp::num
