// Differential harness: the v2 kinetic solve path (shooting limit-cycle
// solver, workspace-backed cores) against the PR-5 reference path (windowed
// long-integration cycle averages), over a randomized candidate stream with
// the same drift-toward-the-Hopf-shell shape the kinetics bench replays.
//
// Contracts (ISSUE acceptance: "zero settled-candidate disagreements and
// zero unsound cycle classifications"):
//   * candidates the reference engine settles by Newton are settled by v2
//     with BITWISE-identical state and uptake (the root path is untouched by
//     the shooting feature, and the root pools evolve identically);
//   * no candidate converged by the reference is lost by v2; the only
//     permitted asymmetry is v2 converging an oscillatory candidate the
//     windowed reference gave up on (an improvement, counted not failed);
//   * when both classify a candidate oscillatory, the shooting cycle
//     average matches the windowed long-integration average within a
//     documented bound.  Two effects separate the means.  (1) The window
//     holds a non-integer number of periods, so it differs from a true
//     cycle mean by O(amplitude * T / window) — order 0.5 here (T <~ 60,
//     window = 400, amplitudes up to ~10 mmol/l).  (2) The C3 oscillatory
//     shell is a drifting FAMILY of pseudo-cycles, not an isolated orbit:
//     serine accumulates as a near-conserved photorespiratory pool (its
//     concentration sits near 1.4e3 mmol/l and climbs a few mmol/l per
//     period), so the one-period shooting snapshot and the 400-unit window
//     mean sample that migration at different effective times.  The
//     absolute bound therefore carries a relative term, sized for the
//     drifting pool: 1.5% covers the observed worst case (~0.7%) twice
//     over while still failing loudly on any genuine disagreement;
//   * an exact repeat of a pooled LIVING cycle is answered by the pool
//     bitwise (the cycle analogue of the root exact-hit contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kinetics/c3model.hpp"
#include "moo/evalcache.hpp"
#include "numeric/rng.hpp"
#include "numeric/vec.hpp"

namespace rmp::kinetics {
namespace {

constexpr double kCycleUptakeBound = 1.0;   // umol m^-2 s^-1
constexpr double kCycleStateBound = 1.0;    // mmol/l, per metabolite
constexpr double kCycleStateRelBound = 0.015;  // drifting-pool term

/// The bench's drifting stream, scaled down: generations track from the
/// natural partition toward an up-regulated Calvin mix whose tail sits in
/// the model's Hopf (oscillatory) shell.
std::vector<num::Vec> make_stream(std::size_t generations, std::size_t batch,
                                  std::uint64_t seed) {
  num::Rng rng(seed);
  num::Vec target(kNumEnzymes, 1.0);
  for (std::size_t e = 0; e < kNumEnzymes; ++e) {
    target[e] = 1.2 + 0.08 * static_cast<double>(e % 5);
  }
  target[kRubisco] = 2.6;
  target[kSbpase] = 2.8;
  target[kPrk] = 2.0;
  target[kFbpase] = 2.2;
  std::vector<num::Vec> stream;
  stream.reserve(generations * batch);
  for (std::size_t g = 0; g < generations; ++g) {
    const double a =
        generations > 1
            ? static_cast<double>(g) / static_cast<double>(generations - 1)
            : 1.0;
    for (std::size_t i = 0; i < batch; ++i) {
      num::Vec mult(kNumEnzymes);
      for (std::size_t e = 0; e < kNumEnzymes; ++e) {
        const double center = 1.0 + a * (target[e] - 1.0);
        mult[e] = std::clamp(center * (1.0 + rng.normal(0.0, 0.05)), 0.02, 5.0);
      }
      stream.push_back(std::move(mult));
    }
  }
  return stream;
}

C3Config engine_config(bool shooting) {
  C3Config cfg;
  cfg.cycle_shooting = shooting;
  // Eviction-free pools: with eviction, root snapshots could diverge between
  // the two models (cycle anchors compete for capacity in the v2 pool) and
  // the settled-path bitwise comparison would turn into a tolerance one.
  cfg.warm_pool_capacity = 4096;
  return cfg;
}

TEST(SolverDifferentialTest, V2AgreesWithReferenceOverRandomStream) {
  const C3Model v2(engine_config(/*shooting=*/true));
  const C3Model ref(engine_config(/*shooting=*/false));
  const auto stream = make_stream(10, 12, 20260808);

  std::size_t settled = 0, oscillatory = 0, improved = 0, shooting_used = 0;
  for (const num::Vec& mult : stream) {
    const SteadyState a = v2.steady_state(mult);
    const SteadyState b = ref.steady_state(mult);

    if (b.converged) {
      // v2 must never lose a candidate the reference resolves.
      ASSERT_TRUE(a.converged) << "v2 lost a reference-converged candidate";
      EXPECT_EQ(a.oscillatory, b.oscillatory) << "classification flipped";
    } else if (a.converged) {
      // The one permitted asymmetry: shooting converging a cycle the
      // windowed reference gave up on.
      EXPECT_TRUE(a.oscillatory);
      ++improved;
      continue;
    }
    if (!a.converged || !b.converged) continue;

    if (!a.oscillatory && !b.oscillatory) {
      ++settled;
      // Settled candidates ride the identical Newton/PTC path over
      // identical root-pool snapshots: bitwise or bust.
      EXPECT_TRUE(moo::bitwise_equal(a.state, b.state));
      EXPECT_EQ(a.co2_uptake, b.co2_uptake);
      EXPECT_EQ(a.residual, b.residual);
    } else if (a.oscillatory && b.oscillatory) {
      ++oscillatory;
      shooting_used += a.used_shooting;
      if (a.used_shooting) {
        EXPECT_GT(a.cycle_period, 0.0);
      }
      EXPECT_NEAR(a.co2_uptake, b.co2_uptake, kCycleUptakeBound);
      ASSERT_EQ(a.state.size(), b.state.size());
      for (std::size_t i = 0; i < a.state.size(); ++i) {
        const double bound =
            std::max(kCycleStateBound,
                     kCycleStateRelBound * std::fabs(b.state[i]));
        EXPECT_NEAR(a.state[i], b.state[i], bound) << "i=" << i;
      }
    }
  }

  // The stream must actually exercise both paths, or the harness is
  // vacuous.  The drift is calibrated to leave a minority of candidates in
  // the oscillatory shell (like the kinetics bench).
  EXPECT_GT(settled, stream.size() / 2);
  EXPECT_GT(oscillatory + improved, 0u);
  // The v2 engine must resolve at least part of the cycle tail by shooting
  // (give-ups fall back to the window, so equality with `oscillatory` is
  // not required).
  EXPECT_GT(shooting_used + improved, 0u);
}

TEST(SolverDifferentialTest, ExactRepeatOfALivingCycleIsAnsweredBitwise) {
  const C3Model model(engine_config(/*shooting=*/true));
  const auto stream = make_stream(10, 12, 20260808);

  for (const num::Vec& mult : stream) {
    const SteadyState first = model.steady_state(mult);
    if (!(first.converged && first.oscillatory && first.used_shooting &&
          first.co2_uptake > 0.5)) {
      continue;
    }
    const SteadyState repeat = model.steady_state(mult);
    EXPECT_TRUE(repeat.converged);
    EXPECT_TRUE(repeat.oscillatory);
    EXPECT_TRUE(repeat.pool_exact_hit);
    EXPECT_EQ(repeat.co2_uptake, first.co2_uptake);
    EXPECT_EQ(repeat.cycle_period, first.cycle_period);
    EXPECT_TRUE(moo::bitwise_equal(repeat.state, first.state));
    return;  // one living cycle proves the contract
  }
  GTEST_SKIP() << "stream produced no living cycles on this seed";
}

TEST(SolverDifferentialTest, ShootingKnobNeverChangesSettledAnswers) {
  // A short all-settled prefix (the early, near-natural generations):
  // engine v1 vs v2 must agree bitwise candidate for candidate, proving
  // the knob only touches the oscillatory tail.
  const C3Model v2(engine_config(true));
  const C3Model ref(engine_config(false));
  const auto stream = make_stream(3, 8, 7);
  for (const num::Vec& mult : stream) {
    const SteadyState a = v2.steady_state(mult);
    const SteadyState b = ref.steady_state(mult);
    ASSERT_EQ(a.converged, b.converged);
    ASSERT_EQ(a.oscillatory, b.oscillatory);
    if (a.converged && !a.oscillatory) {
      EXPECT_TRUE(moo::bitwise_equal(a.state, b.state));
      EXPECT_EQ(a.co2_uptake, b.co2_uptake);
    }
  }
}

}  // namespace
}  // namespace rmp::kinetics
