// Property tests for the shooting limit-cycle solver (ISSUE: "locked down by
// a solver differential-test harness" — the kinetic-model differential side
// lives in solver_differential_test.cpp; here the solver's own contracts are
// pinned on the van der Pol oscillator, whose mu = 1 cycle has a
// literature-known period of ~6.6633 and |y0| amplitude of ~2.0086:
//   * converged cycles have positive period inside the configured bounds;
//   * the cycle average is invariant under a phase shift of the guess;
//   * monodromy stability agrees with what plain integration observes;
//   * non-periodic trajectories, fixed-point guesses, and sub-amplitude
//     orbits are clean give-ups (converged = false), never silent nonsense.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "numeric/ode.hpp"
#include "numeric/shooting.hpp"
#include "numeric/vec.hpp"

namespace rmp::num {
namespace {

constexpr double kVdpPeriod = 6.6633;  // van der Pol, mu = 1

void vdp_rhs(double, std::span<const double> y, Vec& d) {
  d[0] = y[1];
  d[1] = (1.0 - y[0] * y[0]) * y[1] - y[0];
}

void decay_rhs(double, std::span<const double> y, Vec& d) {
  d[0] = -y[0];
  d[1] = -y[1];
}

void harmonic_rhs(double, std::span<const double> y, Vec& d) {
  d[0] = y[1];
  d[1] = -y[0];
}

double first_component(std::span<const double> y) { return y[0]; }

ShootingOptions vdp_options() {
  ShootingOptions opts;
  opts.ode.abs_tol = 1e-10;
  opts.ode.rel_tol = 1e-8;
  opts.ode.max_step = 0.5;
  opts.average_samples = 96;
  return opts;
}

TEST(ShootingTest, ConvergesOnVanDerPolWithKnownPeriod) {
  const OdeRhs f = vdp_rhs;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, vdp_options());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.period, kVdpPeriod, 0.02);
  // amplitude is the max over components; van der Pol's y1 swing (~5.356)
  // exceeds y0's 2 * 2.0086.
  EXPECT_NEAR(r.amplitude, 5.356, 0.1);
  // The cycle is symmetric under y -> -y, so the time average vanishes.
  EXPECT_NEAR(r.average_state[0], 0.0, 0.05);
  EXPECT_NEAR(r.average_state[1], 0.0, 0.05);
  EXPECT_TRUE(r.stable);
  EXPECT_LT(r.floquet_magnitude, 1.0);
  EXPECT_GT(r.rhs_evals, 0u);
}

TEST(ShootingTest, PeriodIsPositiveAndInsideConfiguredBounds) {
  const OdeRhs f = vdp_rhs;
  const ShootingOptions opts = vdp_options();
  const ShootingResult r = solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.period, 0.0);
  EXPECT_GT(r.period, opts.min_period);
  EXPECT_LT(r.period, opts.max_period);
}

TEST(ShootingTest, GuessOutsidePeriodBoundsIsARejectionNotASolve) {
  const OdeRhs f = vdp_rhs;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 1e5, vdp_options());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rhs_evals, 0u);  // rejected before any integration
}

TEST(ShootingTest, AverageIsInvariantUnderPhaseShiftOfTheGuess) {
  const OdeRhs f = vdp_rhs;
  const ShootingOptions opts = vdp_options();
  const auto obs = first_component;
  const ShootingResult a =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts, obs);
  ASSERT_TRUE(a.converged);

  // A point ~37% of a period further along the same orbit: a different
  // phase, the same cycle.
  const OdeResult shifted =
      integrate(f, 0.0, a.cycle_state, 0.37 * a.period, opts.ode);
  ASSERT_TRUE(shifted.success);
  const ShootingResult b = solve_limit_cycle(f, shifted.y, 6.5, opts, obs);
  ASSERT_TRUE(b.converged);

  EXPECT_NEAR(a.period, b.period, 1e-3);
  EXPECT_NEAR(a.amplitude, b.amplitude, 0.05);
  for (std::size_t i = 0; i < a.average_state.size(); ++i) {
    EXPECT_NEAR(a.average_state[i], b.average_state[i], 0.02) << "i=" << i;
  }
  EXPECT_NEAR(a.average_observable, b.average_observable, 0.02);
}

TEST(ShootingTest, AverageMatchesLongIntegrationWindow) {
  // The windowed reference: ride out the transient, then a left-Riemann
  // mean over ~40 periods.  The window holds a non-integer number of
  // periods, so the two averages agree only to O(amplitude * T / window)
  // ~ 0.05 — the same bound documented for the kinetic cycle path in
  // solver_differential_test.cpp.
  const OdeRhs f = vdp_rhs;
  const ShootingOptions opts = vdp_options();
  const ShootingResult r =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts, first_component);
  ASSERT_TRUE(r.converged);

  OdeOptions iopts = opts.ode;
  OdeResult leg = integrate(f, 0.0, Vec{0.5, 0.0}, 60.0, iopts);
  ASSERT_TRUE(leg.success);
  Vec y = leg.y;
  Vec mean(2, 0.0);
  double mean_obs = 0.0;
  const int samples = 2000;
  const double dt = 40.0 * kVdpPeriod / samples;
  for (int s = 0; s < samples; ++s) {
    add_inplace(mean, y);
    mean_obs += y[0];
    if (leg.last_step > 0.0) iopts.initial_step = leg.last_step;
    leg = integrate(f, 0.0, y, dt, iopts);
    ASSERT_TRUE(leg.success);
    y = leg.y;
  }
  scale_inplace(mean, 1.0 / samples);
  mean_obs /= samples;

  EXPECT_NEAR(r.average_state[0], mean[0], 0.05);
  EXPECT_NEAR(r.average_state[1], mean[1], 0.05);
  EXPECT_NEAR(r.average_observable, mean_obs, 0.05);
}

TEST(ShootingTest, MonodromyStabilityAgreesWithIntegration) {
  // Integration evidence that the orbit attracts: a trajectory from well
  // inside the cycle settles onto an oscillation whose peak-to-peak y0
  // range matches the converged cycle's amplitude.
  const OdeRhs f = vdp_rhs;
  const ShootingOptions opts = vdp_options();
  const ShootingResult r =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts);
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.stable);

  OdeOptions iopts = opts.ode;
  OdeResult leg = integrate(f, 0.0, Vec{0.1, 0.0}, 80.0, iopts);
  ASSERT_TRUE(leg.success);
  Vec y = leg.y;
  Vec lo = y, hi = y;
  const int samples = 400;
  const double dt = 2.0 * kVdpPeriod / samples;
  for (int s = 0; s < samples; ++s) {
    if (leg.last_step > 0.0) iopts.initial_step = leg.last_step;
    leg = integrate(f, 0.0, y, dt, iopts);
    ASSERT_TRUE(leg.success);
    y = leg.y;
    for (std::size_t i = 0; i < y.size(); ++i) {
      lo[i] = std::min(lo[i], y[i]);
      hi[i] = std::max(hi[i], y[i]);
    }
  }
  // amplitude is the max peak-to-peak range over components.
  double observed = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    observed = std::max(observed, hi[i] - lo[i]);
  }
  EXPECT_NEAR(observed, r.amplitude, 0.1);
}

TEST(ShootingTest, FloquetThresholdRejectsWhenTightened) {
  // Same cycle, an impossible stability demand: the solver must flag the
  // orbit unstable (converged = false) instead of quietly passing it.
  const OdeRhs f = vdp_rhs;
  ShootingOptions opts = vdp_options();
  opts.max_floquet_magnitude = 1e-12;
  const ShootingResult r = solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.stable);
  EXPECT_GT(r.floquet_magnitude, 1e-12);
}

TEST(ShootingTest, CleanGiveUpOnNonPeriodicTrajectory) {
  // Pure decay: the only recurrent point is the origin, which the phase
  // condition excludes — the solver must give up, not fabricate a cycle.
  const OdeRhs f = decay_rhs;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{1.0, 1.0}, 5.0, vdp_options());
  EXPECT_FALSE(r.converged);
}

TEST(ShootingTest, FixedPointGuessIsAnImmediateGiveUp) {
  // (0, 0) is van der Pol's equilibrium: the phase gradient vanishes and
  // there is nothing to pin a phase against.
  const OdeRhs f = vdp_rhs;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{0.0, 0.0}, 6.0, vdp_options());
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rhs_evals, 1u);  // one probe of the phase gradient, no flights
}

TEST(ShootingTest, SubAmplitudeOrbitIsRejected) {
  // The harmonic oscillator's tiny circle satisfies Phi_T(y) = y exactly at
  // T = 2 pi, but its amplitude sits below min_amplitude: a fixed point
  // masquerading as a cycle for the caller's purposes.
  const OdeRhs f = harmonic_rhs;
  ShootingOptions opts = vdp_options();
  opts.min_amplitude = 1e-4;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{1e-6, 0.0}, 2.0 * 3.14159265358979, opts);
  EXPECT_FALSE(r.converged);
}

TEST(ShootingTest, EstimatePeriodReadsTheVdpPeriodAndSeedsTheSolver) {
  const OdeRhs f = vdp_rhs;
  OdeOptions iopts = vdp_options().ode;
  const OdeResult transient = integrate(f, 0.0, Vec{0.5, 0.0}, 30.0, iopts);
  ASSERT_TRUE(transient.success);

  const PeriodEstimate est =
      estimate_period(f, transient.y, 40.0, 0.05, iopts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.period, kVdpPeriod, 0.15);
  ASSERT_EQ(est.anchor_state.size(), 2u);
  EXPECT_TRUE(all_finite(est.anchor_state));

  // The estimate is a good enough (y0, T) seed to converge the solver.
  const ShootingResult r =
      solve_limit_cycle(f, est.anchor_state, est.period, vdp_options());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.period, kVdpPeriod, 0.02);
}

TEST(ShootingTest, EstimatePeriodRejectsNonPeriodicTrajectories) {
  const OdeRhs f = decay_rhs;
  const PeriodEstimate est =
      estimate_period(f, Vec{1.0, 1.0}, 40.0, 0.05, vdp_options().ode);
  EXPECT_FALSE(est.valid);
}

// --- drift-tolerant mode ----------------------------------------------------
// A planar Hopf normal-form cycle crossed with a near-conserved third
// coordinate: x' = -y + x(1 - x^2 - y^2), y' = x + y(1 - x^2 - y^2),
// z' = -epsilon z.  For small epsilon each z-level carries a pseudo-cycle of
// period ~2 pi, and the flow drifts slowly down the family toward the true
// isolated cycle at z = 0 — the same structure (one slow near-neutral
// direction, fast-contracting transverse modes) as the C3 model's
// serine-accumulation shell, but with a known answer at both ends.

constexpr double kFamilyEps = 0.002;
constexpr double kTwoPi = 6.283185307179586;

void family_rhs(double, std::span<const double> y, Vec& d) {
  const double r2 = y[0] * y[0] + y[1] * y[1];
  d[0] = -y[1] + y[0] * (1.0 - r2);
  d[1] = y[0] + y[1] * (1.0 - r2);
  d[2] = -kFamilyEps * y[2];
}

TEST(ShootingTest, StrictModeFollowsTheFamilyToItsTrueCycle) {
  // With drift_tolerance = 0 the solver must refuse the z = 0.5
  // pseudo-cycle and land on the genuine isolated cycle at z = 0 (the
  // z-block of M - I is small but nonsingular: multiplier e^{-2 pi eps}).
  const OdeRhs f = family_rhs;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{1.0, 0.0, 0.5}, 6.2, vdp_options());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.period, kTwoPi, 1e-3);
  EXPECT_NEAR(r.cycle_state[2], 0.0, 1e-4);
  EXPECT_EQ(r.drift, 0.0);  // an isolated cycle does not drift
}

TEST(ShootingTest, DriftModeSnapshotsThePseudoCycleItWasGiven) {
  // With a drift budget the solver accepts the pseudo-cycle NEAR the guess
  // instead of chasing the family: the snapshot keeps z close to the
  // launch level (only a couple of e^{-2 pi eps} contractions away), the
  // period is the family's ~2 pi, and the migration rate is reported.
  const OdeRhs f = family_rhs;
  ShootingOptions opts = vdp_options();
  opts.drift_tolerance = 0.05;
  const ShootingResult r =
      solve_limit_cycle(f, Vec{1.0, 0.0, 0.5}, 6.2, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.period, kTwoPi, 1e-3);
  EXPECT_GT(r.cycle_state[2], 0.4);  // still on the upper family, not z = 0
  EXPECT_LT(r.cycle_state[2], 0.5);
  EXPECT_GT(r.drift, 0.0);
  // Per-period family migration: |dz| = z (1 - e^{-2 pi eps}).
  EXPECT_NEAR(r.drift, r.cycle_state[2] * (1.0 - std::exp(-kTwoPi * kFamilyEps)),
              2e-3);
  EXPECT_TRUE(r.stable);
  EXPECT_LT(r.floquet_magnitude, 1.0);
}

TEST(ShootingTest, DriftModeStillGivesUpCleanlyOffCycle) {
  // The budget forgives slow family drift, never non-periodicity: pure
  // decay must remain a clean give-up even with the budget wide open.
  const OdeRhs f = decay_rhs;
  ShootingOptions opts = vdp_options();
  opts.drift_tolerance = 0.05;
  const ShootingResult r = solve_limit_cycle(f, Vec{1.0, 1.0}, 5.0, opts);
  EXPECT_FALSE(r.converged);
}

TEST(ShootingTest, DriftModeMatchesStrictOnAGenuineIsolatedCycle) {
  // On van der Pol (no slow family) the budgeted path must land on the
  // same cycle as strict Newton: the fast remainder alone reaches the
  // tolerance and the measured drift is ~0.
  const OdeRhs f = vdp_rhs;
  ShootingOptions opts = vdp_options();
  opts.drift_tolerance = 0.05;
  const ShootingResult drift =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, opts, first_component);
  const ShootingResult strict =
      solve_limit_cycle(f, Vec{2.0, 0.0}, 6.5, vdp_options(), first_component);
  ASSERT_TRUE(drift.converged);
  ASSERT_TRUE(strict.converged);
  EXPECT_NEAR(drift.period, strict.period, 1e-3);
  EXPECT_NEAR(drift.amplitude, strict.amplitude, 0.05);
  EXPECT_NEAR(drift.average_observable, strict.average_observable, 0.02);
  EXPECT_LT(drift.drift, 1e-3);
}

}  // namespace
}  // namespace rmp::num
