// Differential harness for the evaluation cache and the tangent prescreen:
// the same RunSpec executed with cache off / cache on / cache+prescreen, at
// island thread counts {1, 2, 8}.
//
// Contracts under test (the determinism section of ARCHITECTURE.md):
//   * cache on vs off: IDENTICAL archive fingerprints, fronts and mined
//     candidates — memoization must change work, never answers;
//   * every configuration: bit-identical results across thread counts, and
//     evaluation accounting (cache hits, prescreen skips, pool hits, full
//     solves) that is itself thread-count invariant;
//   * prescreen on: deterministic and thread-count invariant (it may change
//     which violation values infeasible candidates report, so it is only
//     required to agree with itself, not with the unscreened run — see the
//     spec.hpp knob comment);
//   * the counters partition the evaluation budget exactly.
//
// The kinetic workload is migration-heavy PMO2 over the photosynthesis
// problem with a robustness stage — the repeat-rich profile the cache is
// for.  The pool= knob is sized so the warm pool never evicts (the
// fingerprint-identity precondition documented in moo/cached_problem.hpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "api/run.hpp"
#include "moo/evalcache.hpp"

namespace rmp::api {
namespace {

constexpr std::size_t kCacheCapacity = 4096;

RunSpec kinetic_spec(std::size_t threads, std::size_t cache, bool prescreen) {
  RunSpec spec;
  spec.problem = "photosynthesis?scenario=present-low&pool=4096";
  spec.optimizer =
      "pmo2?islands=2&population=8&migration_interval=2&migrants=2";
  spec.generations = 6;
  spec.seed = 7;
  spec.threads = threads;
  spec.cache = cache;
  spec.prescreen = prescreen;
  spec.robustness.enabled = true;
  spec.robustness.trials = 6;
  spec.robustness.surface_samples = 0;
  return spec;
}

void expect_same_answers(const RunResult& a, const RunResult& b,
                         const char* what) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  ASSERT_EQ(a.front.size(), b.front.size()) << what;
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_TRUE(moo::bitwise_equal(a.front[i].f, b.front[i].f)) << what;
  }
  ASSERT_EQ(a.mined.size(), b.mined.size()) << what;
  for (std::size_t i = 0; i < a.mined.size(); ++i) {
    EXPECT_EQ(a.mined[i].selection, b.mined[i].selection) << what;
    EXPECT_EQ(a.mined[i].front_index, b.mined[i].front_index) << what;
    EXPECT_TRUE(moo::bitwise_equal(a.mined[i].x, b.mined[i].x)) << what;
    EXPECT_TRUE(moo::bitwise_equal(a.mined[i].objectives, b.mined[i].objectives))
        << what;
    ASSERT_EQ(a.mined[i].yield.has_value(), b.mined[i].yield.has_value()) << what;
    if (a.mined[i].yield) {
      EXPECT_EQ(a.mined[i].yield->gamma, b.mined[i].yield->gamma) << what;
      EXPECT_EQ(a.mined[i].yield->nominal_value, b.mined[i].yield->nominal_value)
          << what;
    }
  }
}

void expect_same_accounting(const moo::EvalStats& a, const moo::EvalStats& b,
                            const char* what) {
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
  EXPECT_EQ(a.prescreen_skips, b.prescreen_skips) << what;
  EXPECT_EQ(a.pool_hits, b.pool_hits) << what;
  EXPECT_EQ(a.full_evaluations, b.full_evaluations) << what;
}

void expect_counters_partition_budget(const RunResult& r, const char* what) {
  EXPECT_EQ(r.eval_stats.evaluations,
            r.eval_stats.cache_hits + r.eval_stats.prescreen_skips +
                r.eval_stats.pool_hits + r.eval_stats.full_evaluations)
      << what;
  // The optimize stage's budget is part of the total (robustness adds more).
  EXPECT_GE(r.eval_stats.evaluations, r.evaluations) << what;
}

const std::vector<std::size_t>& thread_counts() {
  static const std::vector<std::size_t> counts = {1, 2, 8};
  return counts;
}

TEST(CacheDifferentialTest, CacheOnEqualsCacheOffAcrossThreadCounts) {
  std::vector<RunResult> uncached, cached;
  for (const std::size_t t : thread_counts()) {
    uncached.push_back(run(kinetic_spec(t, 0, false)));
    cached.push_back(run(kinetic_spec(t, kCacheCapacity, false)));
  }

  // Thread-count invariance within each configuration...
  for (std::size_t i = 1; i < uncached.size(); ++i) {
    expect_same_answers(uncached[0], uncached[i], "uncached across threads");
    expect_same_answers(cached[0], cached[i], "cached across threads");
    expect_same_accounting(uncached[0].eval_stats, uncached[i].eval_stats,
                           "uncached accounting across threads");
    expect_same_accounting(cached[0].eval_stats, cached[i].eval_stats,
                           "cached accounting across threads");
  }
  // ... and cache-on == cache-off: memoization changes work, never answers.
  for (std::size_t i = 0; i < cached.size(); ++i) {
    expect_same_answers(uncached[i], cached[i], "cache on vs off");
  }

  for (const RunResult& r : uncached) {
    expect_counters_partition_budget(r, "uncached");
    EXPECT_EQ(r.eval_stats.cache_hits, 0u);
  }
  for (const RunResult& r : cached) {
    expect_counters_partition_budget(r, "cached");
  }
  // The workload genuinely repeats candidates, and the cache absorbs work
  // the uncached run answers via pool exact hits or full solves.
  EXPECT_GT(cached[0].eval_stats.cache_hits, 0u);
  EXPECT_LT(cached[0].eval_stats.full_evaluations +
                cached[0].eval_stats.pool_hits,
            uncached[0].eval_stats.full_evaluations +
                uncached[0].eval_stats.pool_hits);
}

TEST(CacheDifferentialTest, PrescreenIsThreadCountInvariant) {
  std::vector<RunResult> screened;
  for (const std::size_t t : thread_counts()) {
    screened.push_back(run(kinetic_spec(t, kCacheCapacity, true)));
  }
  for (std::size_t i = 1; i < screened.size(); ++i) {
    expect_same_answers(screened[0], screened[i], "prescreen across threads");
    expect_same_accounting(screened[0].eval_stats, screened[i].eval_stats,
                           "prescreen accounting across threads");
  }
  for (const RunResult& r : screened) {
    expect_counters_partition_budget(r, "prescreen");
  }
}

TEST(CacheDifferentialTest, AnalyticProblemsCacheTransparently) {
  // The decorator is problem-agnostic: a pure analytic problem must also
  // fingerprint identically with the cache on.
  RunSpec spec;
  spec.problem = "zdt1?n=8";
  spec.optimizer = "pmo2?islands=2&population=12&migration_interval=3";
  spec.generations = 12;
  spec.seed = 5;
  spec.robustness.enabled = false;
  for (const std::size_t t : thread_counts()) {
    spec.threads = t;
    spec.cache = 0;
    const RunResult off = run(spec);
    spec.cache = kCacheCapacity;
    const RunResult on = run(spec);
    expect_same_answers(off, on, "zdt1 cache on vs off");
    expect_counters_partition_budget(on, "zdt1 cached");
  }
}

TEST(CacheDifferentialTest, PrescreenOnProblemWithoutOneIsRejected) {
  RunSpec spec;
  spec.problem = "zdt1?n=8";
  spec.generations = 1;
  spec.prescreen = true;
  EXPECT_THROW((void)run(spec), SpecError);
}

}  // namespace
}  // namespace rmp::api
