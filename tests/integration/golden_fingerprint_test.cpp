// Golden-fingerprint regression corpus: committed (spec, seed) -> archive
// fingerprint pairs for the canonical PMO2-over-photosynthesis workloads.
// The differential suites prove invariances (cache on == off, any thread
// count); this corpus pins the ABSOLUTE answers, so a behavioral drift that
// shifts every configuration in lockstep — which no differential test can
// see — still fails loudly.
//
// The fingerprint is api::RunResult::fingerprint, the FNV-1a digest of the
// canonical archive (see api/run.hpp).  Every workload below is small enough
// for a fast ctest lane; the table spans both scenarios the ISSUE names
// (past-low, present-high) with the cache/prescreen ladder on each.
//
// Regenerating after an INTENTIONAL behavior change (e.g. a new solver
// default that legitimately moves cycle averages):
//
//     build/tests/integration_golden_fingerprint_test --gtest_also_run_disabled_tests \
//         --gtest_filter='*PrintCurrentTable*'
//
// then paste the printed rows over kGolden below, and say why in the commit
// message.  Goldens were generated with the Release (-O2) toolchain; the
// table must match in every build type — -ffp-contract drift would be a
// portability bug worth catching, not an excuse to fork the table.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "api/run.hpp"

namespace rmp::api {
namespace {

struct GoldenRow {
  const char* name;      // stable identifier, also the gtest failure label
  const char* scenario;  // photosynthesis scenario label
  std::size_t cache;     // EvalCache capacity (0 = off)
  bool prescreen;
  std::uint64_t fingerprint;
};

RunSpec golden_spec(const GoldenRow& row) {
  RunSpec spec;
  spec.problem = std::string("photosynthesis?scenario=") + row.scenario +
                 "&pool=4096";
  spec.optimizer =
      "pmo2?islands=2&population=8&migration_interval=2&migrants=2";
  spec.generations = 5;
  spec.seed = 11;
  spec.threads = 2;
  spec.cache = row.cache;
  spec.prescreen = row.prescreen;
  spec.robustness.enabled = false;
  return spec;
}

// The committed corpus.  Cache-on rows MUST repeat the cache-off value for
// the same scenario (memoization never changes answers); the prescreen rows
// may differ (the skip path substitutes predicted violations — see
// photosynthesis_problem.hpp).
constexpr GoldenRow kGolden[] = {
    {"past-low/plain", "past-low", 0, false, 0xc56cbbdf779291a6ULL},
    {"past-low/cache", "past-low", 4096, false, 0xc56cbbdf779291a6ULL},
    {"past-low/cache+prescreen", "past-low", 4096, true, 0xc56cbbdf779291a6ULL},
    {"present-high/plain", "present-high", 0, false, 0xd226f93e4eb9946bULL},
    {"present-high/cache", "present-high", 4096, false, 0xd226f93e4eb9946bULL},
    {"present-high/cache+prescreen", "present-high", 4096, true, 0xd226f93e4eb9946bULL},
};

TEST(GoldenFingerprintTest, ArchiveFingerprintsMatchCommittedTable) {
  for (const GoldenRow& row : kGolden) {
    const RunResult result = run(golden_spec(row));
    EXPECT_EQ(result.fingerprint, row.fingerprint) << row.name;
    EXPECT_GT(result.front.size(), 0u) << row.name;
  }
}

TEST(GoldenFingerprintTest, CacheRowsRepeatThePlainFingerprint) {
  // Redundant with the committed values, but self-checks the TABLE: a
  // regeneration that pasted a cache-on row differing from its plain row
  // would mean the invariant broke while regenerating — fail here, at the
  // source, instead of in the differential suite later.
  EXPECT_EQ(kGolden[0].fingerprint, kGolden[1].fingerprint);
  EXPECT_EQ(kGolden[3].fingerprint, kGolden[4].fingerprint);
}

TEST(GoldenFingerprintTest, DISABLED_PrintCurrentTable) {
  for (const GoldenRow& row : kGolden) {
    const RunResult result = run(golden_spec(row));
    std::printf("    {\"%s\", \"%s\", %zu, %s, 0x%016" PRIx64 "ULL},\n",
                row.name, row.scenario, row.cache,
                row.prescreen ? "true" : "false", result.fingerprint);
  }
}

}  // namespace
}  // namespace rmp::api
