// End-to-end integration tests: the paper's pipelines at reduced scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/designer.hpp"
#include "fba/fba.hpp"
#include "fba/geobacter_problem.hpp"
#include "kinetics/scenarios.hpp"
#include "moo/moead.hpp"
#include "moo/pmo2.hpp"
#include "moo/testproblems.hpp"
#include "pareto/coverage.hpp"
#include "pareto/hypervolume.hpp"
#include "pareto/mining.hpp"
#include "robustness/yield.hpp"

namespace rmp {
namespace {

TEST(IntegrationTest, PhotosynthesisFrontDominatesNaturalLeaf) {
  // Reduced-scale Section 3.1: the PMO2 front at the present-day condition
  // must contain points that dominate the natural partition (same uptake at
  // less nitrogen, or more uptake at the same nitrogen).
  auto problem = kinetics::make_problem(kinetics::table1_scenario());
  moo::Pmo2Options o;
  o.islands = 2;
  o.generations = 40;
  o.migration_interval = 20;
  o.seed = 3;
  moo::Pmo2 pmo2(*problem, o, moo::Pmo2::default_nsga2_factory(30));
  pmo2.run();

  const auto front = pareto::Front::from_population(pmo2.archive().solutions());
  ASSERT_GT(front.size(), 10u);

  const double natural_uptake = problem->model().natural_state().co2_uptake;
  const double natural_nitrogen =
      problem->model().nitrogen(num::Vec(kinetics::kNumEnzymes, 1.0));

  bool improves = false;
  for (const auto& m : front.members()) {
    const auto [uptake, nitrogen] = kinetics::PhotosynthesisProblem::to_paper_units(m.f);
    if (uptake >= natural_uptake && nitrogen < 0.95 * natural_nitrogen) improves = true;
  }
  EXPECT_TRUE(improves);
}

TEST(IntegrationTest, TradeoffPointsAreRobust) {
  // Section 2.3 on the real model: the closest-to-ideal candidate of a small
  // run keeps most of its uptake under 10% enzyme noise.
  auto problem = kinetics::make_problem(kinetics::figure2_scenario());
  moo::Pmo2Options o;
  o.islands = 2;
  o.generations = 25;
  o.seed = 4;
  moo::Pmo2 pmo2(*problem, o, moo::Pmo2::default_nsga2_factory(24));
  pmo2.run();
  const auto front = pareto::Front::from_population(pmo2.archive().solutions());
  ASSERT_FALSE(front.empty());

  const std::size_t pick = pareto::closest_to_ideal(front);
  const auto& model = problem->model();
  const robustness::PropertyFn uptake = [&model](std::span<const double> x) {
    return model.steady_state(x).co2_uptake;
  };
  robustness::YieldConfig cfg;
  cfg.perturbation.global_trials = 150;
  const auto yield = robustness::global_yield(front[pick].x, uptake, cfg);
  EXPECT_GT(yield.gamma, 0.2);
}

TEST(IntegrationTest, GeobacterOptimizationApproachesLpFront) {
  // Reduced-scale Section 3.2: PMO2 with null-space repair finds solutions
  // near the LP-optimal electron/biomass corner while keeping the
  // steady-state violation tiny.
  auto net = std::make_shared<const fba::MetabolicNetwork>(fba::build_geobacter());
  auto problem = std::make_shared<fba::GeobacterProblem>(net);
  moo::Pmo2Options o;
  o.islands = 2;
  o.generations = 12;
  o.migration_interval = 6;
  o.seed = 5;
  moo::Pmo2 pmo2(*problem, o, moo::Pmo2::default_nsga2_factory(24));
  pmo2.run();

  const auto front = pareto::Front::from_population(pmo2.archive().solutions());
  ASSERT_FALSE(front.empty());
  double best_ep = 0.0, best_bp = 0.0;
  for (const auto& m : front.members()) {
    const auto [ep, bp] = fba::GeobacterProblem::to_paper_units(m.f);
    best_ep = std::max(best_ep, ep);
    best_bp = std::max(best_bp, bp);
  }
  EXPECT_GT(best_ep, 140.0);  // LP max is 161
  EXPECT_GT(best_bp, 0.25);   // LP max is ~0.47
}

TEST(IntegrationTest, Pmo2BeatsSingleMoeadOnCoverage) {
  // A miniature Table 1: on ZDT3 (disconnected front — where the archipelago's
  // accumulating archive genuinely shines against a fixed weight lattice), the
  // PMO2 front should cover the union front better than one MOEA/D run of the
  // same evaluation budget.  Coverage is aggregated over three seeds so the
  // comparison tests the method, not one lucky trajectory: a seed-sweep shows
  // PMO2 wins or ties 13/15 single-seed contests on this configuration with
  // a wide aggregate margin, while single-seed results on the multi-modal
  // ZDT4 are a coin flip at this budget for either side.
  const moo::Zdt3 problem(8);

  double pmo2_coverage = 0.0;
  double moead_coverage = 0.0;
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    moo::Pmo2Options po;
    po.islands = 2;
    po.generations = 60;
    po.migration_interval = 15;
    po.seed = seed;
    moo::Pmo2 pmo2(problem, po, moo::Pmo2::default_nsga2_factory(30));
    pmo2.run();
    const auto pmo2_front =
        pareto::Front::from_population(pmo2.archive().solutions());

    moo::MoeadOptions mo;
    mo.population_size = 60;
    mo.seed = seed;
    moo::Moead moead(problem, mo);
    moead.run(61);
    const auto moead_front = pareto::Front::from_population(moead.population());

    const std::vector<pareto::Front> fronts{pmo2_front, moead_front};
    const auto cov = pareto::coverage_against_union(fronts);
    pmo2_coverage += cov[0].global;
    moead_coverage += cov[1].global;

    // Front quality stays comparable on every single run.
    const pareto::Front global = pareto::Front::global_union(fronts);
    const num::Vec ideal = global.relative_minimum();
    const num::Vec nadir = global.relative_maximum();
    const double v_pmo2 = pareto::normalized_hypervolume(pmo2_front, ideal, nadir);
    const double v_moead = pareto::normalized_hypervolume(moead_front, ideal, nadir);
    EXPECT_GT(v_pmo2, 0.5 * v_moead) << "seed " << seed;
  }
  EXPECT_GE(pmo2_coverage + 1e-9, moead_coverage);
}

TEST(IntegrationTest, DesignerOnPhotosynthesisProducesMinedCandidates) {
  auto problem = kinetics::make_problem(kinetics::table1_scenario());
  core::DesignerConfig cfg;
  cfg.optimizer.islands = 2;
  cfg.optimizer.generations = 15;
  cfg.optimizer.seed = 8;
  cfg.surface.samples = 5;
  cfg.surface.yield.perturbation.global_trials = 60;
  const core::RobustDesigner designer(cfg);

  const auto& model = problem->model();
  const robustness::PropertyFn uptake = [&model](std::span<const double> x) {
    return model.steady_state(x).co2_uptake;
  };
  const core::DesignReport report = designer.design(*problem, uptake);
  EXPECT_GE(report.mined.size(), 3u);
  EXPECT_FALSE(report.front.empty());
}

}  // namespace
}  // namespace rmp
