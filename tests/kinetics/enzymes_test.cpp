#include "kinetics/enzymes.hpp"

#include "numeric/vec.hpp"

#include <gtest/gtest.h>

namespace rmp::kinetics {
namespace {

TEST(EnzymeTableTest, TwentyThreeEnzymes) {
  EXPECT_EQ(kNumEnzymes, 23u);
  EXPECT_EQ(enzyme_table().size(), 23u);
}

TEST(EnzymeTableTest, Figure2NamesPresentInOrder) {
  // The exact labels of the paper's Figure 2, left to right.
  EXPECT_EQ(enzyme_name(kRubisco), "Rubisco");
  EXPECT_EQ(enzyme_name(kPgaKinase), "PGA Kinase");
  EXPECT_EQ(enzyme_name(kGapDh), "GAP DH");
  EXPECT_EQ(enzyme_name(kFbpAldolase), "FBP Aldolase");
  EXPECT_EQ(enzyme_name(kFbpase), "FBPase");
  EXPECT_EQ(enzyme_name(kTransketolase), "Transketolase");
  EXPECT_EQ(enzyme_name(kSbpAldolase), "Aldolase");
  EXPECT_EQ(enzyme_name(kSbpase), "SBPase");
  EXPECT_EQ(enzyme_name(kPrk), "PRK");
  EXPECT_EQ(enzyme_name(kAdpgpp), "ADPGPP");
  EXPECT_EQ(enzyme_name(kPgcaPase), "PGCAPase");
  EXPECT_EQ(enzyme_name(kGceaKinase), "GCEA Kinase");
  EXPECT_EQ(enzyme_name(kGoaOxidase), "GOA Oxidase");
  EXPECT_EQ(enzyme_name(kGsat), "GSAT");
  EXPECT_EQ(enzyme_name(kHprReductase), "HPR reductas");
  EXPECT_EQ(enzyme_name(kGgat), "GGAT");
  EXPECT_EQ(enzyme_name(kGdc), "GDC");
  EXPECT_EQ(enzyme_name(kCytFbpAldolase), "Cytolic FBP aldolase");
  EXPECT_EQ(enzyme_name(kCytFbpase), "Cytolic FBPase");
  EXPECT_EQ(enzyme_name(kUdpgp), "UDPGP");
  EXPECT_EQ(enzyme_name(kSps), "SPS");
  EXPECT_EQ(enzyme_name(kSpp), "SPP");
  EXPECT_EQ(enzyme_name(kF26bpase), "F26BPase");
}

TEST(EnzymeTableTest, AllEntriesPhysical) {
  for (const EnzymeInfo& e : enzyme_table()) {
    EXPECT_GT(e.mw_kda, 0.0);
    EXPECT_GT(e.kcat_per_s, 0.0);
    EXPECT_GT(e.natural_vmax, 0.0);
  }
}

TEST(NitrogenTest, FormulaMatchesPaper) {
  // N_i = x_i * MW_i / kcat_i * scale (Figure 2 caption).
  const EnzymeInfo& rub = enzyme_table()[kRubisco];
  const double vmax = 2.0;
  EXPECT_DOUBLE_EQ(enzyme_nitrogen(kRubisco, vmax, 10.0),
                   vmax * rub.mw_kda / rub.kcat_per_s * 10.0);
}

TEST(NitrogenTest, TotalIsLinearInMultipliers) {
  const rmp::num::Vec ones(kNumEnzymes, 1.0);
  const rmp::num::Vec twos(kNumEnzymes, 2.0);
  const double n1 = total_nitrogen(ones, 1.0);
  const double n2 = total_nitrogen(twos, 1.0);
  EXPECT_NEAR(n2, 2.0 * n1, 1e-9);
}

TEST(NitrogenTest, NaturalPartitionMatchesPaperOperatingPoint) {
  // The calibrated natural leaf carries ~208330 mg/l protein nitrogen
  // (Figure 1's "Oper. Nitrogen Conc.").
  const rmp::num::Vec ones(kNumEnzymes, 1.0);
  const double n = total_nitrogen(ones, 658.1);
  EXPECT_NEAR(n, 208330.0, 0.02 * 208330.0);
}

TEST(NitrogenTest, RubiscoIsTheDominantNitrogenItem) {
  // The paper: "Rubisco provides nitrogen to increase the concentration of
  // other enzymes" — it must be the single largest nitrogen investment.
  const auto table = enzyme_table();
  const double rub = enzyme_nitrogen(kRubisco, table[kRubisco].natural_vmax, 1.0);
  for (std::size_t e = 1; e < kNumEnzymes; ++e) {
    EXPECT_GT(rub, enzyme_nitrogen(e, table[e].natural_vmax, 1.0)) << enzyme_name(e);
  }
}

}  // namespace
}  // namespace rmp::kinetics
