#include "kinetics/warm_start.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/json.hpp"
#include "moo/state.hpp"
#include "numeric/rng.hpp"

namespace rmp::kinetics {
namespace {

num::Vec key1(double a, double b) { return num::Vec{a, b}; }

TEST(WarmStartPoolTest, EmptyPoolMisses) {
  WarmStartPool pool(8);
  num::Vec start;
  EXPECT_FALSE(pool.nearest(key1(1.0, 1.0), start));
  EXPECT_EQ(pool.snapshot_size(), 0u);
}

TEST(WarmStartPoolTest, RecordIsInvisibleUntilCommit) {
  WarmStartPool pool(8);
  pool.record(key1(1.0, 1.0), num::Vec{7.0});
  num::Vec start;
  EXPECT_FALSE(pool.nearest(key1(1.0, 1.0), start));
  EXPECT_EQ(pool.pending_size(), 1u);
  pool.commit();
  EXPECT_EQ(pool.pending_size(), 0u);
  ASSERT_TRUE(pool.nearest(key1(1.0, 1.0), start));
  EXPECT_EQ(start, num::Vec{7.0});
}

TEST(WarmStartPoolTest, NearestPicksClosestCommittedEntry) {
  WarmStartPool pool(8);
  pool.record(key1(0.0, 0.0), num::Vec{1.0});
  pool.record(key1(2.0, 2.0), num::Vec{2.0});
  pool.record(key1(5.0, 5.0), num::Vec{3.0});
  pool.commit();
  num::Vec start;
  ASSERT_TRUE(pool.nearest(key1(1.8, 2.1), start));
  EXPECT_EQ(start, num::Vec{2.0});
  ASSERT_TRUE(pool.nearest(key1(-1.0, 0.0), start));
  EXPECT_EQ(start, num::Vec{1.0});
}

TEST(WarmStartPoolTest, NearestTieBreaksTowardLowestSnapshotIndex) {
  WarmStartPool pool(8);
  // Committed in one batch -> canonical (lexicographic) order: (-1,0) before
  // (1,0).  A query equidistant from both must pick the earlier entry.
  pool.record(key1(1.0, 0.0), num::Vec{2.0});
  pool.record(key1(-1.0, 0.0), num::Vec{1.0});
  pool.commit();
  num::Vec start;
  ASSERT_TRUE(pool.nearest(key1(0.0, 0.0), start));
  EXPECT_EQ(start, num::Vec{1.0});
}

TEST(WarmStartPoolTest, CommitIsIndependentOfArrivalOrder) {
  // The determinism keystone: the same SET of recorded pairs — arriving in
  // scrambled per-thread order — must commit to identical snapshots.
  num::Rng rng(42);
  std::vector<std::pair<num::Vec, num::Vec>> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back({num::Vec{rng.uniform(), rng.uniform(), rng.uniform()},
                       num::Vec{rng.uniform(), rng.uniform()}});
  }

  WarmStartPool forward(32), scrambled(32);
  for (const auto& [k, s] : entries) forward.record(k, s);
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  // Concurrent recording (the PMO2-island situation), consuming the
  // scrambled order from both ends.
  std::thread other([&] {
    for (std::size_t i = 0; i < order.size() / 2; ++i) {
      scrambled.record(entries[order[i]].first, entries[order[i]].second);
    }
  });
  for (std::size_t i = order.size() / 2; i < order.size(); ++i) {
    scrambled.record(entries[order[i]].first, entries[order[i]].second);
  }
  other.join();

  forward.commit();
  scrambled.commit();
  ASSERT_EQ(forward.snapshot_size(), scrambled.snapshot_size());
  for (int probe = 0; probe < 100; ++probe) {
    const num::Vec q{rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0),
                     rng.uniform(-1.0, 2.0)};
    num::Vec a, b;
    ASSERT_TRUE(forward.nearest(q, a));
    ASSERT_TRUE(scrambled.nearest(q, b));
    EXPECT_EQ(a, b) << "probe " << probe;
  }
}

TEST(WarmStartPoolTest, RecommittedKeyReplacesStateAndMovesToBack) {
  WarmStartPool pool(2);
  pool.record(key1(0.0, 0.0), num::Vec{1.0});
  pool.record(key1(9.0, 9.0), num::Vec{2.0});
  pool.commit();
  // Refresh (0,0) in a later epoch; capacity stays 2, both keys present.
  pool.record(key1(0.0, 0.0), num::Vec{10.0});
  pool.commit();
  EXPECT_EQ(pool.snapshot_size(), 2u);
  num::Vec start;
  ASSERT_TRUE(pool.nearest(key1(0.0, 0.0), start));
  EXPECT_EQ(start, num::Vec{10.0});
  ASSERT_TRUE(pool.nearest(key1(9.0, 9.0), start));
  EXPECT_EQ(start, num::Vec{2.0});
}

TEST(WarmStartPoolTest, CapacityEvictsOldestFirst) {
  WarmStartPool pool(2);
  pool.record(key1(0.0, 0.0), num::Vec{1.0});
  pool.commit();
  pool.record(key1(5.0, 5.0), num::Vec{2.0});
  pool.commit();
  pool.record(key1(9.0, 9.0), num::Vec{3.0});
  pool.commit();
  EXPECT_EQ(pool.snapshot_size(), 2u);
  num::Vec start;
  // The oldest entry (0,0) fell off: its exact key now maps to (5,5)'s state.
  ASSERT_TRUE(pool.nearest(key1(0.0, 0.0), start));
  EXPECT_EQ(start, num::Vec{2.0});
}

TEST(WarmStartPoolTest, DuplicateKeysInOneBatchDedupe) {
  WarmStartPool pool(8);
  pool.record(key1(1.0, 1.0), num::Vec{5.0});
  pool.record(key1(1.0, 1.0), num::Vec{5.0});
  pool.record(key1(1.0, 1.0), num::Vec{5.0});
  pool.commit();
  EXPECT_EQ(pool.snapshot_size(), 1u);
}

TEST(WarmStartPoolTest, ZeroCapacityDisablesThePool) {
  WarmStartPool pool(0);
  pool.record(key1(1.0, 1.0), num::Vec{5.0});
  EXPECT_EQ(pool.pending_size(), 0u);
  pool.commit();
  num::Vec start;
  EXPECT_FALSE(pool.nearest(key1(1.0, 1.0), start));
}

TEST(WarmStartPoolTest, ClearDropsSnapshotAndPending) {
  WarmStartPool pool(8);
  pool.record(key1(1.0, 1.0), num::Vec{5.0});
  pool.commit();
  pool.record(key1(2.0, 2.0), num::Vec{6.0});
  pool.clear();
  EXPECT_EQ(pool.snapshot_size(), 0u);
  EXPECT_EQ(pool.pending_size(), 0u);
}

TEST(WarmStartPoolTest, StateRoundTripKeepsRootsCyclesAndTieOrder) {
  WarmStartPool a(8);
  // Two roots committed in one batch (canonical order: (-1,0) then (1,0))
  // plus one cycle anchor.
  a.record(key1(1.0, 0.0), num::Vec{2.0});
  a.record(key1(-1.0, 0.0), num::Vec{1.0});
  a.record_cycle(key1(4.0, 4.0), num::Vec{9.0}, num::Vec{8.5}, 2.25, 0.75);
  a.commit();

  core::Json doc = core::Json::object();
  a.save_state(doc);
  WarmStartPool b(8);
  b.load_state(core::Json::parse(doc.dump(2)));
  EXPECT_EQ(b.snapshot_size(), a.snapshot_size());

  // Snapshot order is semantic: the equidistant tie must still break toward
  // the entry that was earlier in the original snapshot.
  num::Vec start;
  ASSERT_TRUE(b.nearest(key1(0.0, 0.0), start));
  EXPECT_EQ(start, num::Vec{1.0});
  // The cycle anchor round-trips with its orbit point, period, observable.
  const WarmStartPool::Hit hit = b.nearest_cycle(key1(4.0, 4.0));
  ASSERT_NE(hit.entry, nullptr);
  EXPECT_TRUE(hit.entry->cycle);
  EXPECT_EQ(hit.entry->state, num::Vec{9.0});
  EXPECT_EQ(hit.entry->cycle_point, num::Vec{8.5});
  EXPECT_EQ(hit.entry->period, 2.25);
  EXPECT_EQ(hit.entry->mean_uptake, 0.75);
}

TEST(WarmStartPoolTest, SaveStateRequiresAnEpochBarrier) {
  WarmStartPool pool(8);
  pool.record(key1(1.0, 1.0), num::Vec{5.0});  // staged, not committed
  core::Json doc = core::Json::object();
  EXPECT_THROW(pool.save_state(doc), moo::StateError);
}

TEST(WarmStartPoolTest, LoadRejectsMoreEntriesThanCapacity) {
  WarmStartPool a(8);
  a.record(key1(1.0, 1.0), num::Vec{5.0});
  a.record(key1(2.0, 2.0), num::Vec{6.0});
  a.commit();
  core::Json doc = core::Json::object();
  a.save_state(doc);
  WarmStartPool small(1);
  EXPECT_THROW(small.load_state(doc), moo::StateError);
}

}  // namespace
}  // namespace rmp::kinetics
