#include "kinetics/control_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kinetics/scenarios.hpp"

namespace rmp::kinetics {
namespace {

const C3Model& model() {
  static const C3Model m = [] {
    C3Config c;
    c.triose_export_vmax = kExportHigh;
    return C3Model(c);
  }();
  return m;
}

TEST(ControlAnalysisTest, OneCoefficientPerEnzyme) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto ccs = flux_control_coefficients(model(), ones);
  ASSERT_EQ(ccs.size(), kNumEnzymes);
  for (std::size_t e = 0; e < kNumEnzymes; ++e) EXPECT_EQ(ccs[e].enzyme, e);
}

TEST(ControlAnalysisTest, CoefficientsAreFiniteAndBounded) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto ccs = flux_control_coefficients(model(), ones);
  for (const auto& c : ccs) {
    if (!c.reliable) continue;
    EXPECT_TRUE(std::isfinite(c.coefficient));
    // Individual flux control coefficients of a stable pathway are small.
    EXPECT_LT(std::fabs(c.coefficient), 5.0) << enzyme_name(c.enzyme);
  }
}

TEST(ControlAnalysisTest, SummationTheoremApproximatelyHolds) {
  // Sum of flux control coefficients ~ 1 for a well-behaved pathway; the
  // numerical probes leave slack, so a generous band is checked.
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto ccs = flux_control_coefficients(model(), ones);
  std::size_t reliable = 0;
  for (const auto& c : ccs) reliable += c.reliable;
  ASSERT_GT(reliable, kNumEnzymes / 2);
  EXPECT_NEAR(control_coefficient_sum(ccs), 1.0, 0.8);
}

TEST(ControlAnalysisTest, SucroseEnzymesControlLittleAtNaturalHighExport) {
  // The paper: "pathway enzymes that lead to sucrose and starch synthesis
  // were shown not to affect CO2 uptake rate if maintained at their natural
  // concentration levels" — their control coefficients must be far from
  // dominating.
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto ccs = flux_control_coefficients(model(), ones);
  double max_cc = 0.0;
  for (const auto& c : ccs) {
    if (c.reliable) max_cc = std::max(max_cc, std::fabs(c.coefficient));
  }
  ASSERT_GT(max_cc, 0.0);
  if (ccs[kSpp].reliable) {
    EXPECT_LT(std::fabs(ccs[kSpp].coefficient), max_cc);
  }
  if (ccs[kUdpgp].reliable) {
    EXPECT_LT(std::fabs(ccs[kUdpgp].coefficient), max_cc);
  }
}

TEST(ControlAnalysisTest, UnreliableWhenBaseDead) {
  const num::Vec starved(kNumEnzymes, 0.02);
  const auto ccs = flux_control_coefficients(model(), starved);
  // Either all unreliable or coefficients of a dead pathway.
  for (const auto& c : ccs) {
    if (c.reliable) {
      EXPECT_TRUE(std::isfinite(c.coefficient));
    }
  }
}

}  // namespace
}  // namespace rmp::kinetics
