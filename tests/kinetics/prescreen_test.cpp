// Tangent-model prescreen soundness and accounting.
//
// The safety property under test: a prescreen SKIP may only ever stand in
// for a candidate the full kinetic solve would have rejected from the
// archive too.  The implementation guarantees this by construction — a skip
// reports the candidate infeasible (violation > 0), and infeasible
// candidates are never admitted to the archive — but the randomized suite
// below checks the stronger empirical claim that the skip decisions are
// CORRECT, not just safe: every skipped candidate, solved in full, really is
// infeasible (dead or unconverged), so prescreening never discards a design
// the archive would have accepted.
#include <gtest/gtest.h>

#include <cmath>

#include "kinetics/photosynthesis_problem.hpp"
#include "kinetics/scenarios.hpp"
#include "moo/archive.hpp"
#include "moo/evalcache.hpp"

namespace rmp::kinetics {
namespace {

/// One shared model: construction solves the natural state and anchors, so
/// tests reuse it (the warm pool accumulates across tests — each test seeds
/// what it needs and never assumes an empty pool).
std::shared_ptr<const C3Model> shared_model() {
  static std::shared_ptr<const C3Model> model = make_model(figure2_scenario());
  return model;
}

PhotosynthesisBounds prescreen_bounds() {
  PhotosynthesisBounds b;
  b.prescreen = true;
  return b;
}

/// Seeds the warm pool with the natural partition and seeded jitters of it,
/// committing so the tangent models are available to predict_uptake().
void seed_pool(const PhotosynthesisProblem& p, std::uint64_t seed,
               std::size_t count) {
  num::Rng rng(seed);
  num::Vec f(2);
  num::Vec x(kNumEnzymes, 1.0);
  (void)p.evaluate(x, f);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& m : x) {
      m = std::clamp(rng.normal(1.0, 0.2), p.lower_bounds()[0],
                     p.upper_bounds()[0]);
    }
    (void)p.evaluate(x, f);
  }
  p.commit_epoch();
}

TEST(PrescreenTest, SkipsAreSoundAgainstTheFullSolve) {
  const auto model = shared_model();
  // The prescreen's honest habitat: a HIGH feasibility threshold carving a
  // smooth boundary through well-pooled territory.  min_uptake = 12 sits on
  // the gentle mid-flank of the uptake manifold (natural uptake ~15.5,
  // collapse only below uniform scale ~0.03), so candidates on the
  // uniform-scaling ray well below the threshold have accurate tangent
  // predictions from nearby pooled anchors and are skipped with the
  // DEFAULT margin/radius — no tuned-down safety knobs.
  PhotosynthesisBounds bounds = prescreen_bounds();
  bounds.min_uptake = 12.0;
  PhotosynthesisProblem p(model, bounds);
  ASSERT_TRUE(p.prescreen_enabled());

  // Seed a ladder of anchors along the uniform-scaling ray.  Every rung is
  // alive in the model's sense (uptake > ~4 down at scale 0.25, far above
  // the pool's 0.5 staging threshold), so the pool covers the INFEASIBLE
  // band below min_uptake — the coverage the prescreen relies on.
  {
    num::Vec f(2);
    for (double s = 0.75; s >= 0.20; s -= 0.05) {
      num::Vec x(kNumEnzymes, s);
      (void)p.evaluate(x, f);
    }
    p.commit_epoch();
  }

  // Randomized candidates: jittered scales in [0.25, 0.55], whose true
  // uptake (~4 to ~9) sits several margins below the threshold.
  num::Rng rng(23);
  moo::EvalStats before = p.eval_stats();
  std::size_t skips_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const double scale = 0.25 + 0.30 * rng.uniform();
    num::Vec x(kNumEnzymes);
    for (double& m : x) {
      m = scale * std::clamp(rng.normal(1.0, 0.03), 0.8, 1.2);
    }

    num::Vec f(2);
    const double violation = p.evaluate(x, f);
    const moo::EvalStats after = p.eval_stats();
    const bool skipped = after.prescreen_skips > before.prescreen_skips;
    before = after;
    if (!skipped) continue;
    ++skips_seen;

    // A skip must be reported infeasible — the archive never admits those.
    EXPECT_GT(violation, 0.0);
    moo::Individual ind;
    ind.x = x;
    ind.f.assign(f.begin(), f.end());
    ind.violation = violation;
    moo::Archive archive;
    archive.offer(ind);
    EXPECT_EQ(archive.size(), 0u);

    // Soundness proper: the full solve agrees the candidate is not
    // archive-admissible (dead, below the alive threshold, or unconverged).
    const SteadyState full = model->steady_state(x);
    EXPECT_FALSE(full.converged && full.co2_uptake >= bounds.min_uptake)
        << "prescreen dropped an admissible candidate: uptake="
        << full.co2_uptake;
    p.commit_epoch();  // fold the verification solve into the pool
  }
  // The suite must actually exercise the skip path to mean anything — in
  // this habitat nearly every candidate is confidently below threshold.
  EXPECT_GE(skips_seen, 10u);
}

TEST(PrescreenTest, ExactPoolRepeatsAreNeverSkipped) {
  const auto model = shared_model();
  PhotosynthesisProblem p(model, prescreen_bounds());
  // A feasible candidate, evaluated and committed...
  num::Vec x(kNumEnzymes, 1.0);
  num::Vec f1(2), f2(2);
  const double v1 = p.evaluate(x, f1);
  ASSERT_EQ(v1, 0.0);
  p.commit_epoch();
  const moo::EvalStats before = p.eval_stats();
  // ... is answered by the pool's exact-key short circuit on repeat, never
  // prescreen-skipped, and reproduces the objectives bitwise.
  const double v2 = p.evaluate(x, f2);
  const moo::EvalStats after = p.eval_stats();
  EXPECT_EQ(after.prescreen_skips, before.prescreen_skips);
  EXPECT_EQ(after.pool_hits, before.pool_hits + 1);
  EXPECT_EQ(v2, v1);
  EXPECT_TRUE(moo::bitwise_equal(f1, f2));
}

TEST(PrescreenTest, PredictionIsPureAndExactOnPooledKeys) {
  const auto model = shared_model();
  PhotosynthesisProblem p(model, prescreen_bounds());
  num::Vec x(kNumEnzymes, 1.0);
  num::Vec f(2);
  (void)p.evaluate(x, f);
  p.commit_epoch();

  // Exact on a pooled key: the prediction IS the full answer.
  const TangentPrediction exact = model->predict_uptake(x);
  ASSERT_TRUE(exact.valid);
  EXPECT_TRUE(exact.exact);
  EXPECT_EQ(exact.dist2, 0.0);
  EXPECT_EQ(exact.step2, 0.0);
  EXPECT_EQ(exact.uptake, -f[0]);

  // Pure between commits: identical twice for a non-pooled candidate.
  num::Vec y(x);
  y[0] = 0.8;
  const TangentPrediction a = model->predict_uptake(y);
  const TangentPrediction b = model->predict_uptake(y);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.uptake, b.uptake);
  EXPECT_EQ(a.dist2, b.dist2);
  EXPECT_EQ(a.step2, b.step2);
  if (a.valid) {
    EXPECT_FALSE(a.exact);
  }
}

TEST(PrescreenTest, CountersPartitionTheEvaluationBudget) {
  const auto model = shared_model();
  PhotosynthesisProblem p(model, prescreen_bounds());
  seed_pool(p, 31, 4);
  num::Rng rng(37);
  num::Vec f(2);
  num::Vec repeat(kNumEnzymes, 1.0);
  for (int trial = 0; trial < 25; ++trial) {
    num::Vec x(kNumEnzymes);
    for (double& m : x) m = std::clamp(rng.normal(1.0, 0.3), 0.02, 5.0);
    if (trial % 4 == 0) x = repeat;  // force pool exact hits
    if (trial % 5 == 0) x[trial % kNumEnzymes] = 0.02;  // invite skips
    (void)p.evaluate(x, f);
    if (trial % 3 == 0) p.commit_epoch();
  }
  const moo::EvalStats s = p.eval_stats();
  // Every evaluation is exactly one of: prescreen skip, pool exact hit, or
  // full solve (cache hits live a layer above and stay zero here).
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.evaluations,
            s.prescreen_skips + s.pool_hits + s.full_evaluations);
  EXPECT_GT(s.pool_hits, 0u);
}

TEST(PrescreenTest, DisabledByDefaultAndTogglable) {
  const auto model = shared_model();
  PhotosynthesisProblem p(model);  // default bounds: prescreen off
  EXPECT_FALSE(p.prescreen_enabled());
  EXPECT_TRUE(p.set_prescreen(true));
  EXPECT_TRUE(p.prescreen_enabled());
  EXPECT_TRUE(p.set_prescreen(false));
  EXPECT_FALSE(p.prescreen_enabled());
}

}  // namespace
}  // namespace rmp::kinetics
