#include "kinetics/photosynthesis_problem.hpp"

#include <gtest/gtest.h>

#include "kinetics/scenarios.hpp"

namespace rmp::kinetics {
namespace {

std::shared_ptr<PhotosynthesisProblem> problem() {
  static std::shared_ptr<PhotosynthesisProblem> p =
      make_problem(figure2_scenario());
  return p;
}

TEST(PhotosynthesisProblemTest, Dimensions) {
  EXPECT_EQ(problem()->num_variables(), 23u);
  EXPECT_EQ(problem()->num_objectives(), 2u);
  EXPECT_EQ(problem()->lower_bounds().size(), 23u);
  EXPECT_EQ(problem()->upper_bounds().size(), 23u);
  EXPECT_GT(problem()->lower_bounds()[0], 0.0);
}

TEST(PhotosynthesisProblemTest, NaturalPartitionIsFeasible) {
  num::Vec x(kNumEnzymes, 1.0);
  num::Vec f(2);
  const double violation = problem()->evaluate(x, f);
  EXPECT_DOUBLE_EQ(violation, 0.0);
  const auto [uptake, nitrogen] = PhotosynthesisProblem::to_paper_units(f);
  EXPECT_NEAR(uptake, 15.486, 0.1 * 15.486);
  EXPECT_NEAR(nitrogen, 208330.0, 0.05 * 208330.0);
}

TEST(PhotosynthesisProblemTest, NitrogenObjectiveIndependentOfKinetics) {
  // f1 is pure bookkeeping: doubling every activity doubles nitrogen.
  num::Vec ones(kNumEnzymes, 1.0), twos(kNumEnzymes, 2.0);
  num::Vec f1(2), f2(2);
  (void)problem()->evaluate(ones, f1);
  (void)problem()->evaluate(twos, f2);
  EXPECT_NEAR(f2[1], 2.0 * f1[1], 1e-6 * f1[1]);
}

TEST(PhotosynthesisProblemTest, StarvedPartitionIsInfeasible) {
  num::Vec x(kNumEnzymes, 0.02);
  num::Vec f(2);
  const double violation = problem()->evaluate(x, f);
  EXPECT_GT(violation, 0.0);  // collapsed or below the alive threshold
}

TEST(PhotosynthesisProblemTest, SuggestInitialSeedsNatural) {
  num::Rng rng(1);
  std::vector<num::Vec> seeds(5);
  const std::size_t got = problem()->suggest_initial(seeds, rng);
  ASSERT_GE(got, 1u);
  EXPECT_EQ(seeds[0], num::Vec(kNumEnzymes, 1.0));
  for (std::size_t s = 1; s < got; ++s) {
    for (double v : seeds[s]) {
      EXPECT_GE(v, problem()->lower_bounds()[0]);
      EXPECT_LE(v, problem()->upper_bounds()[0]);
    }
  }
}

TEST(PhotosynthesisProblemTest, ToPaperUnitsFlipsUptakeSign) {
  const num::Vec f{-20.0, 1e5};
  const auto [uptake, nitrogen] = PhotosynthesisProblem::to_paper_units(f);
  EXPECT_DOUBLE_EQ(uptake, 20.0);
  EXPECT_DOUBLE_EQ(nitrogen, 1e5);
}

TEST(ScenarioTest, SixConditionsOfFigure1) {
  const auto scenarios = figure1_scenarios();
  EXPECT_EQ(scenarios.size(), 6u);
  int low = 0, high = 0;
  for (const Scenario& s : scenarios) {
    EXPECT_TRUE(s.ci_ppm == kCiPast || s.ci_ppm == kCiPresent || s.ci_ppm == kCiFuture);
    low += s.triose_export_vmax == kExportLow;
    high += s.triose_export_vmax == kExportHigh;
  }
  EXPECT_EQ(low, 3);
  EXPECT_EQ(high, 3);
}

TEST(ScenarioTest, TableAndFigureConditions) {
  EXPECT_EQ(table1_scenario().ci_ppm, kCiPresent);
  EXPECT_EQ(table1_scenario().triose_export_vmax, kExportHigh);
  EXPECT_EQ(figure2_scenario().ci_ppm, kCiPresent);
  EXPECT_EQ(figure2_scenario().triose_export_vmax, kExportLow);
}

TEST(ScenarioTest, LookupByCanonicalLabel) {
  EXPECT_EQ(all_scenarios().size(), 6u);
  for (const Scenario& s : all_scenarios()) {
    const Scenario* found = scenario_by_label(s.label);
    ASSERT_NE(found, nullptr) << s.label;
    EXPECT_EQ(found->ci_ppm, s.ci_ppm);
    EXPECT_EQ(found->triose_export_vmax, s.triose_export_vmax);
  }
  const Scenario* future_low = scenario_by_label("future-low");
  ASSERT_NE(future_low, nullptr);
  EXPECT_EQ(future_low->ci_ppm, kCiFuture);
  EXPECT_EQ(future_low->triose_export_vmax, kExportLow);
  EXPECT_EQ(scenario_by_label("mars-high"), nullptr);
  EXPECT_EQ(scenario_by_label(""), nullptr);
}

TEST(AciCurveTest, MonotoneThenSaturatingForNaturalLeaf) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const num::Vec cis{150.0, 270.0, 420.0};
  const auto curve = aci_curve(ones, cis, kExportHigh);
  ASSERT_EQ(curve.size(), 3u);
  for (const AciPoint& p : curve) {
    EXPECT_TRUE(p.converged) << p.ci_ppm;
    EXPECT_GT(p.uptake, 0.0);
  }
  // Rising limb: more CO2, more assimilation at the low end.
  EXPECT_LT(curve[0].uptake, curve[1].uptake);
  // Saturation: the gain flattens (second increment smaller per ppm).
  const double slope_low =
      (curve[1].uptake - curve[0].uptake) / (cis[1] - cis[0]);
  const double slope_high =
      (curve[2].uptake - curve[1].uptake) / (cis[2] - cis[1]);
  EXPECT_LT(slope_high, slope_low + 0.05);
}

}  // namespace
}  // namespace rmp::kinetics
