#include "kinetics/c3model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kinetics/scenarios.hpp"

namespace rmp::kinetics {
namespace {

/// Shared models (constructing one solves the natural steady state).
const C3Model& present_low() {
  static const C3Model model(C3Config{});  // defaults: Ci=270, export=1
  return model;
}

const C3Model& present_high() {
  static const C3Model model = [] {
    C3Config c;
    c.triose_export_vmax = kExportHigh;
    return C3Model(c);
  }();
  return model;
}

TEST(C3ModelTest, NaturalStateConverges) {
  const SteadyState& nat = present_low().natural_state();
  ASSERT_TRUE(nat.converged);
  EXPECT_LT(nat.residual, 1e-3);
  EXPECT_TRUE(num::all_finite(nat.state));
}

TEST(C3ModelTest, NaturalUptakeMatchesPaperOperatingPoint) {
  // Figure 1: "Oper. CO2 Uptake: 15.486 +- 10% umol m^-2 s^-1".
  const double a = present_low().natural_state().co2_uptake;
  EXPECT_NEAR(a, 15.486, 0.10 * 15.486);
}

TEST(C3ModelTest, NaturalNitrogenMatchesPaper) {
  const num::Vec ones(kNumEnzymes, 1.0);
  EXPECT_NEAR(present_low().nitrogen(ones), 208330.0, 0.05 * 208330.0);
}

TEST(C3ModelTest, StateIsNonNegativeAndPoolsPlausibleAtNatural) {
  const num::Vec& y = present_low().natural_state().state;
  for (double v : y) EXPECT_GE(v, 0.0);
  // Conserved pools respected.
  const C3Config& c = present_low().config();
  EXPECT_LE(y[kAtp], c.adenylate_total + 1e-6);
}

TEST(C3ModelTest, DerivativesVanishAtSteadyState) {
  const num::Vec ones(kNumEnzymes, 1.0);
  num::Vec dydt(kNumMetabolites);
  present_low().derivatives(present_low().natural_state().state, ones, dydt);
  EXPECT_LT(num::norm_inf(dydt), 1e-3);
}

TEST(C3ModelTest, CarbonBalanceClosesAtSteadyState) {
  // Net fixation = carbon leaving through export, starch and photorespiratory
  // CO2 (sucrose carbon leaves via the translocator legs).
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Rates r = present_low().rates(present_low().natural_state().state, ones);
  const double carbon_in = r.vc;                       // 1 C per carboxylation
  const double carbon_out = 3.0 * (r.v_export + r.v_export_pga) +
                            6.0 * r.v_starch + r.v_gdc;
  EXPECT_NEAR(carbon_in, carbon_out, 0.05 * carbon_in);
}

TEST(C3ModelTest, PhotorespiratoryChainIsBalanced) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Rates r = present_low().rates(present_low().natural_state().state, ones);
  // vo -> PGCA -> GCA -> GOA at steady state.
  EXPECT_NEAR(r.vo, r.v_pgcapase, 0.02 * r.vo);
  EXPECT_NEAR(r.v_pgcapase, r.v_goaox, 0.02 * r.vo);
  // GDC releases one CO2 per two glycines: v_gdc = vo / 2.
  EXPECT_NEAR(r.v_gdc, 0.5 * r.vo, 0.05 * r.vo);
}

TEST(C3ModelTest, UptakeAccountsForPhotorespiration) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Model& m = present_low();
  const C3Rates r = m.rates(m.natural_state().state, ones);
  const double expected = m.config().uptake_area_scale * (r.vc - r.v_gdc);
  EXPECT_NEAR(m.co2_uptake(m.natural_state().state, ones), expected, 1e-9);
}

TEST(C3ModelTest, HigherExportCapacityRaisesUptake) {
  EXPECT_GT(present_high().natural_state().co2_uptake,
            present_low().natural_state().co2_uptake);
}

TEST(C3ModelTest, UptakeRespondsToCi) {
  // Fronts should order past < present in natural uptake at high export.
  C3Config past;
  past.ci_ppm = kCiPast;
  past.triose_export_vmax = kExportHigh;
  const C3Model past_model(past);
  ASSERT_TRUE(past_model.natural_state().converged);
  EXPECT_LT(past_model.natural_state().co2_uptake,
            present_high().natural_state().co2_uptake);
}

TEST(C3ModelTest, AllSixScenariosHaveLivingNaturalState) {
  for (const Scenario& s : figure1_scenarios()) {
    const auto model = make_model(s);
    EXPECT_TRUE(model->natural_state().converged) << s.label;
    EXPECT_GT(model->natural_state().co2_uptake, 5.0) << s.label;
  }
}

TEST(C3ModelTest, UpRegulatedPartitionFixesMore) {
  const num::Vec boosted(kNumEnzymes, 5.0);
  const SteadyState ss = present_high().steady_state(boosted);
  ASSERT_TRUE(ss.converged);
  EXPECT_GT(ss.co2_uptake, present_high().natural_state().co2_uptake * 1.5);
}

TEST(C3ModelTest, DownRegulatedPartitionNearDeath) {
  const num::Vec starved(kNumEnzymes, 0.02);
  const SteadyState ss = present_low().steady_state(starved);
  // Either converged with negligible uptake or declared unconverged.
  if (ss.converged) {
    EXPECT_LT(ss.co2_uptake, 1.0);
  }
}

TEST(C3ModelTest, SteadyUptakeOptionalPropagatesFailure) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto a = present_low().steady_uptake(ones);
  ASSERT_TRUE(a.has_value());
  EXPECT_NEAR(*a, present_low().natural_state().co2_uptake, 0.2);
}

TEST(C3ModelTest, PerturbedPartitionsEvaluateQuickly) {
  // The warm-start path must handle +-10% perturbations (the robustness
  // ensembles) without falling back to integration.
  num::Rng rng(4);
  const C3Model& m = present_high();
  for (int t = 0; t < 25; ++t) {
    num::Vec mult(kNumEnzymes);
    for (double& v : mult) v = 1.0 + rng.uniform(-0.1, 0.1);
    const SteadyState ss = m.steady_state(mult);
    EXPECT_TRUE(ss.converged);
    EXPECT_GT(ss.co2_uptake, 5.0);
  }
}

TEST(C3ModelTest, RatesAreFiniteEverywhereInBox) {
  num::Rng rng(9);
  const C3Model& m = present_low();
  num::Vec y = C3Model::default_initial_state();
  for (int t = 0; t < 100; ++t) {
    num::Vec mult(kNumEnzymes);
    for (double& v : mult) v = rng.uniform(0.02, 5.0);
    for (double& v : y) v = rng.uniform(0.0, 5.0);
    num::Vec dydt(kNumMetabolites);
    m.derivatives(y, mult, dydt);
    EXPECT_TRUE(num::all_finite(dydt));
  }
}

}  // namespace
}  // namespace rmp::kinetics
