#include "kinetics/c3model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/parallel.hpp"
#include "kinetics/photosynthesis_problem.hpp"
#include "kinetics/scenarios.hpp"

namespace rmp::kinetics {
namespace {

/// Shared models (constructing one solves the natural steady state).
const C3Model& present_low() {
  static const C3Model model(C3Config{});  // defaults: Ci=270, export=1
  return model;
}

const C3Model& present_high() {
  static const C3Model model = [] {
    C3Config c;
    c.triose_export_vmax = kExportHigh;
    return C3Model(c);
  }();
  return model;
}

TEST(C3ModelTest, NaturalStateConverges) {
  const SteadyState& nat = present_low().natural_state();
  ASSERT_TRUE(nat.converged);
  EXPECT_LT(nat.residual, 1e-3);
  EXPECT_TRUE(num::all_finite(nat.state));
}

TEST(C3ModelTest, NaturalUptakeMatchesPaperOperatingPoint) {
  // Figure 1: "Oper. CO2 Uptake: 15.486 +- 10% umol m^-2 s^-1".
  const double a = present_low().natural_state().co2_uptake;
  EXPECT_NEAR(a, 15.486, 0.10 * 15.486);
}

TEST(C3ModelTest, NaturalNitrogenMatchesPaper) {
  const num::Vec ones(kNumEnzymes, 1.0);
  EXPECT_NEAR(present_low().nitrogen(ones), 208330.0, 0.05 * 208330.0);
}

TEST(C3ModelTest, StateIsNonNegativeAndPoolsPlausibleAtNatural) {
  const num::Vec& y = present_low().natural_state().state;
  for (double v : y) EXPECT_GE(v, 0.0);
  // Conserved pools respected.
  const C3Config& c = present_low().config();
  EXPECT_LE(y[kAtp], c.adenylate_total + 1e-6);
}

TEST(C3ModelTest, DerivativesVanishAtSteadyState) {
  const num::Vec ones(kNumEnzymes, 1.0);
  num::Vec dydt(kNumMetabolites);
  present_low().derivatives(present_low().natural_state().state, ones, dydt);
  EXPECT_LT(num::norm_inf(dydt), 1e-3);
}

TEST(C3ModelTest, CarbonBalanceClosesAtSteadyState) {
  // Net fixation = carbon leaving through export, starch and photorespiratory
  // CO2 (sucrose carbon leaves via the translocator legs).
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Rates r = present_low().rates(present_low().natural_state().state, ones);
  const double carbon_in = r.vc;                       // 1 C per carboxylation
  const double carbon_out = 3.0 * (r.v_export + r.v_export_pga) +
                            6.0 * r.v_starch + r.v_gdc;
  EXPECT_NEAR(carbon_in, carbon_out, 0.05 * carbon_in);
}

TEST(C3ModelTest, PhotorespiratoryChainIsBalanced) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Rates r = present_low().rates(present_low().natural_state().state, ones);
  // vo -> PGCA -> GCA -> GOA at steady state.
  EXPECT_NEAR(r.vo, r.v_pgcapase, 0.02 * r.vo);
  EXPECT_NEAR(r.v_pgcapase, r.v_goaox, 0.02 * r.vo);
  // GDC releases one CO2 per two glycines: v_gdc = vo / 2.
  EXPECT_NEAR(r.v_gdc, 0.5 * r.vo, 0.05 * r.vo);
}

TEST(C3ModelTest, UptakeAccountsForPhotorespiration) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const C3Model& m = present_low();
  const C3Rates r = m.rates(m.natural_state().state, ones);
  const double expected = m.config().uptake_area_scale * (r.vc - r.v_gdc);
  EXPECT_NEAR(m.co2_uptake(m.natural_state().state, ones), expected, 1e-9);
}

TEST(C3ModelTest, HigherExportCapacityRaisesUptake) {
  EXPECT_GT(present_high().natural_state().co2_uptake,
            present_low().natural_state().co2_uptake);
}

TEST(C3ModelTest, UptakeRespondsToCi) {
  // Fronts should order past < present in natural uptake at high export.
  C3Config past;
  past.ci_ppm = kCiPast;
  past.triose_export_vmax = kExportHigh;
  const C3Model past_model(past);
  ASSERT_TRUE(past_model.natural_state().converged);
  EXPECT_LT(past_model.natural_state().co2_uptake,
            present_high().natural_state().co2_uptake);
}

TEST(C3ModelTest, AllSixScenariosHaveLivingNaturalState) {
  for (const Scenario& s : figure1_scenarios()) {
    const auto model = make_model(s);
    EXPECT_TRUE(model->natural_state().converged) << s.label;
    EXPECT_GT(model->natural_state().co2_uptake, 5.0) << s.label;
  }
}

TEST(C3ModelTest, UpRegulatedPartitionFixesMore) {
  const num::Vec boosted(kNumEnzymes, 5.0);
  const SteadyState ss = present_high().steady_state(boosted);
  ASSERT_TRUE(ss.converged);
  EXPECT_GT(ss.co2_uptake, present_high().natural_state().co2_uptake * 1.5);
}

TEST(C3ModelTest, DownRegulatedPartitionNearDeath) {
  const num::Vec starved(kNumEnzymes, 0.02);
  const SteadyState ss = present_low().steady_state(starved);
  // Either converged with negligible uptake or declared unconverged.
  if (ss.converged) {
    EXPECT_LT(ss.co2_uptake, 1.0);
  }
}

TEST(C3ModelTest, SteadyUptakeOptionalPropagatesFailure) {
  const num::Vec ones(kNumEnzymes, 1.0);
  const auto a = present_low().steady_uptake(ones);
  ASSERT_TRUE(a.has_value());
  EXPECT_NEAR(*a, present_low().natural_state().co2_uptake, 0.2);
}

TEST(C3ModelTest, PerturbedPartitionsEvaluateQuickly) {
  // The warm-start path must handle +-10% perturbations (the robustness
  // ensembles) without falling back to integration.
  num::Rng rng(4);
  const C3Model& m = present_high();
  for (int t = 0; t < 25; ++t) {
    num::Vec mult(kNumEnzymes);
    for (double& v : mult) v = 1.0 + rng.uniform(-0.1, 0.1);
    const SteadyState ss = m.steady_state(mult);
    EXPECT_TRUE(ss.converged);
    EXPECT_GT(ss.co2_uptake, 5.0);
  }
}

TEST(C3ModelTest, AnalyticJacobianMatchesFiniteDifferences) {
  // The differential guard of the closed-form Jacobian: every entry must
  // agree with a central finite difference of derivatives() on randomized
  // states and enzyme partitions (clamped free-Pi/ADP branches included —
  // the random box regularly activates both).
  const C3Model& m = present_low();
  num::Rng rng(1234);
  num::Vec y(kNumMetabolites), mult(kNumEnzymes), dydt(kNumMetabolites);
  num::Vec fplus(kNumMetabolites), fminus(kNumMetabolites);
  num::Matrix jac;
  for (int trial = 0; trial < 25; ++trial) {
    for (double& v : mult) v = rng.uniform(0.05, 4.0);
    for (double& v : y) v = rng.uniform(0.01, 3.0);
    m.derivatives_and_jacobian(y, mult, dydt, jac);
    // derivatives_and_jacobian's dydt must be the plain derivatives().
    num::Vec check(kNumMetabolites);
    m.derivatives(y, mult, check);
    for (std::size_t r = 0; r < kNumMetabolites; ++r) {
      ASSERT_EQ(dydt[r], check[r]);
    }
    for (std::size_t col = 0; col < kNumMetabolites; ++col) {
      const double h = 1e-6 * std::max(1.0, std::fabs(y[col]));
      num::Vec yp(y), ym(y);
      yp[col] += h;
      ym[col] -= h;
      m.derivatives(yp, mult, fplus);
      m.derivatives(ym, mult, fminus);
      for (std::size_t r = 0; r < kNumMetabolites; ++r) {
        const double fd = (fplus[r] - fminus[r]) / (2.0 * h);
        const double tol =
            2e-4 * std::max({1.0, std::fabs(fd), std::fabs(jac(r, col))});
        EXPECT_NEAR(jac(r, col), fd, tol)
            << "entry (" << r << ", " << col << "), trial " << trial;
      }
    }
  }
}

TEST(C3ModelTest, RatesAreFiniteEverywhereInBox) {
  num::Rng rng(9);
  const C3Model& m = present_low();
  num::Vec y = C3Model::default_initial_state();
  for (int t = 0; t < 100; ++t) {
    num::Vec mult(kNumEnzymes);
    for (double& v : mult) v = rng.uniform(0.02, 5.0);
    for (double& v : y) v = rng.uniform(0.0, 5.0);
    num::Vec dydt(kNumMetabolites);
    m.derivatives(y, mult, dydt);
    EXPECT_TRUE(num::all_finite(dydt));
  }
}

TEST(C3ModelTest, AnalyticEngineAgreesWithFdColdStartBaseline) {
  // The optimized engine (analytic Jacobian, chord reuse, warm pool) and the
  // PR-4-era baseline must find the same living root — same uptake within
  // solver tolerance — while spending several times fewer RHS evaluations.
  C3Config base_cfg;
  base_cfg.analytic_jacobian = false;
  base_cfg.chord_max_age = 1;
  base_cfg.warm_pool_capacity = 0;
  const C3Model baseline(base_cfg);
  const C3Model optimized{C3Config{}};
  ASSERT_TRUE(baseline.natural_state().converged);
  ASSERT_TRUE(optimized.natural_state().converged);
  EXPECT_NEAR(optimized.natural_state().co2_uptake,
              baseline.natural_state().co2_uptake,
              0.02 * baseline.natural_state().co2_uptake);

  num::Rng rng(21);
  std::size_t rhs_base = 0, rhs_opt = 0;
  int settled = 0;
  for (int t = 0; t < 8; ++t) {
    num::Vec mult(kNumEnzymes);
    for (double& v : mult) v = std::clamp(rng.normal(1.0, 0.15), 0.02, 5.0);
    const SteadyState b = baseline.steady_state(mult);
    const SteadyState o = optimized.steady_state(mult);
    ASSERT_EQ(b.converged, o.converged) << "candidate " << t;
    if (!b.converged) continue;
    EXPECT_GT(b.rhs_evaluations, 0u);
    EXPECT_GT(b.jacobian_factorizations, 0u);
    rhs_base += b.rhs_evaluations;
    rhs_opt += o.rhs_evaluations;
    // Candidates near the Hopf boundary legitimately resolve differently
    // (a cycle AVERAGE vs a genuine root the better Jacobian reaches);
    // same-root agreement is asserted where both solvers truly settled.
    if (b.residual > 1e-2 || o.residual > 1e-2) continue;
    ++settled;
    EXPECT_NEAR(o.co2_uptake, b.co2_uptake,
                0.02 * std::max(1.0, std::fabs(b.co2_uptake)))
        << "candidate " << t;
  }
  ASSERT_GT(settled, 3);
  // The headline saving: >= 3x fewer RHS evaluations over the sample.
  EXPECT_LT(3 * rhs_opt, rhs_base)
      << "optimized " << rhs_opt << " vs baseline " << rhs_base;
}

TEST(C3ModelTest, SequentialSolvesWarmStartFromThePool) {
  const C3Model m{C3Config{}};
  ASSERT_TRUE(m.natural_state().converged);
  const num::Vec first(kNumEnzymes, 1.08);
  const SteadyState s1 = m.steady_state(first);
  ASSERT_TRUE(s1.converged);
  // Serial context: the living solution commits immediately.
  EXPECT_GT(m.warm_pool().snapshot_size(), 0u);
  const num::Vec second(kNumEnzymes, 1.10);
  const SteadyState s2 = m.steady_state(second);
  ASSERT_TRUE(s2.converged);
  EXPECT_TRUE(s2.warm_started);
}

TEST(C3ModelTest, CallerHintShortCircuitsTheLadder) {
  const C3Model& m = present_low();
  num::Vec mult(kNumEnzymes, 1.0);
  mult[kRubisco] = 1.02;  // a control-analysis-sized probe
  const SteadyState ss = m.steady_state(mult, m.natural_state().state);
  ASSERT_TRUE(ss.converged);
  EXPECT_TRUE(ss.warm_started);
  EXPECT_FALSE(ss.used_integration_fallback);
}

TEST(C3ModelTest, DisabledPoolNeverWarmStarts) {
  C3Config cfg;
  cfg.warm_pool_capacity = 0;
  const C3Model m(cfg);
  ASSERT_TRUE(m.natural_state().converged);
  const num::Vec a(kNumEnzymes, 1.05);
  ASSERT_TRUE(m.steady_state(a).converged);
  EXPECT_EQ(m.warm_pool().snapshot_size(), 0u);
  const SteadyState s2 = m.steady_state(a);
  ASSERT_TRUE(s2.converged);
  EXPECT_FALSE(s2.warm_started);
}

TEST(C3ModelTest, EpochCommittedPoolIsThreadCountInvariant) {
  // The tentpole's determinism contract at unit level: generational batches
  // through core::evaluate_batch, with the problem's epoch commit between
  // them (exactly what the engines do), must produce bit-identical
  // objectives and violations for any thread count.  A fresh model per
  // width — the pool is model state.
  const auto run_with_threads = [](std::size_t threads) {
    auto model = std::make_shared<const C3Model>(C3Config{});
    PhotosynthesisProblem problem(model);
    num::Rng rng(77);
    std::vector<num::Vec> scores;
    for (int gen = 0; gen < 3; ++gen) {
      std::vector<moo::Individual> batch(16);
      for (moo::Individual& ind : batch) {
        ind.x.resize(kNumEnzymes);
        for (double& v : ind.x) v = std::clamp(rng.normal(1.0, 0.25), 0.02, 5.0);
      }
      core::evaluate_batch(problem, batch, threads);
      problem.commit_epoch();
      for (moo::Individual& ind : batch) {
        num::Vec row = ind.f;
        row.push_back(ind.violation);
        scores.push_back(std::move(row));
      }
    }
    return scores;
  };
  const auto serial = run_with_threads(1);
  const auto wide = run_with_threads(8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], wide[i]) << "candidate " << i;  // bitwise
  }
}

}  // namespace
}  // namespace rmp::kinetics
